// Deterministic pseudo-fuzzing: the CSV parser and the rules parser must
// reject or accept — never crash on — random byte soup and mutated valid
// inputs.

#include <gtest/gtest.h>

#include "core/rule_io.h"
#include "data/csv.h"
#include "test_util.h"
#include "util/random.h"

namespace erminer {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  static constexpr char kChars[] =
      "abcXYZ019 ,;|=!:\"\n\r\t%#{}\\'\xff\x01";
  size_t len = static_cast<size_t>(rng->NextUint64(max_len + 1));
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kChars[rng->NextUint64(sizeof(kChars) - 1)]);
  }
  return s;
}

class CsvFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzz, NeverCrashesOnRandomInput) {
  Rng rng(GetParam() * 2654435761ULL);
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomBytes(&rng, 120);
    auto result = ParseCsv(input);
    if (result.ok()) {
      // Accepted input must round-trip structurally.
      StringTable t = std::move(result).ValueOrDie();
      auto again = ParseCsv(ToCsv(t));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->num_rows(), t.num_rows());
      EXPECT_EQ(again->num_cols(), t.num_cols());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Range<uint64_t>(1, 9));

class RuleIoFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuleIoFuzz, NeverCrashesOnRandomInput) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  Rng rng(GetParam() * 40503ULL);
  for (int i = 0; i < 200; ++i) {
    auto result = RulesFromText(RandomBytes(&rng, 150), c);
    (void)result.ok();  // either outcome is fine; crashing is not
  }
}

TEST_P(RuleIoFuzz, NeverCrashesOnMutatedValidInput) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  const std::string valid = "lhs=A:A y=Y:Y tp=G=g1 S=3 C=0.77 Q=0.33\n";
  Rng rng(GetParam() * 7877ULL);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    size_t n_edits = 1 + rng.NextUint64(4);
    for (size_t e = 0; e < n_edits; ++e) {
      size_t pos = static_cast<size_t>(rng.NextUint64(mutated.size()));
      switch (rng.NextUint64(3)) {
        case 0:
          mutated[pos] = static_cast<char>('!' + rng.NextUint64(90));
          break;
        case 1:
          mutated.erase(mutated.begin() + static_cast<long>(pos));
          break;
        default:
          mutated.insert(mutated.begin() + static_cast<long>(pos),
                         static_cast<char>('!' + rng.NextUint64(90)));
          break;
      }
      if (mutated.empty()) break;
    }
    auto result = RulesFromText(mutated, c);
    if (result.ok()) {
      // Whatever parsed must re-serialize without issue.
      (void)RulesToText(*result, c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleIoFuzz, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace erminer
