#include "data/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(CsvTest, ParsesSimple) {
  auto t = ParseCsv("A,B\n1,2\n3,4\n").ValueOrDie();
  EXPECT_EQ(t.schema.attribute(0).name, "A");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(CsvTest, MissingTrailingNewlineOk) {
  auto t = ParseCsv("A\nx").ValueOrDie();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows[0][0], "x");
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto t = ParseCsv("A,B\n\"a,b\",\"line1\nline2\"\n").ValueOrDie();
  EXPECT_EQ(t.rows[0][0], "a,b");
  EXPECT_EQ(t.rows[0][1], "line1\nline2");
}

TEST(CsvTest, EscapedQuotes) {
  auto t = ParseCsv("A\n\"say \"\"hi\"\"\"\n").ValueOrDie();
  EXPECT_EQ(t.rows[0][0], "say \"hi\"");
}

TEST(CsvTest, CrlfTolerated) {
  auto t = ParseCsv("A,B\r\n1,2\r\n").ValueOrDie();
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(CsvTest, EmptyFieldsPreserved) {
  auto t = ParseCsv("A,B,C\n,,\n").ValueOrDie();
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("A\n\"oops\n").ok());
}

TEST(CsvTest, RaggedRowFails) {
  EXPECT_FALSE(ParseCsv("A,B\n1\n").ok());
}

TEST(CsvTest, EmptyInputFails) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, RoundTripWithQuoting) {
  StringTable t;
  t.schema = Schema::FromNames({"name", "note"});
  t.rows = {{"a,b", "say \"hi\""}, {"", "line1\nline2"}};
  auto back = ParseCsv(ToCsv(t)).ValueOrDie();
  EXPECT_EQ(back.rows, t.rows);
  EXPECT_EQ(back.schema.attribute(1).name, "note");
}

TEST(CsvTest, FileRoundTrip) {
  StringTable t;
  t.schema = Schema::FromNames({"A"});
  t.rows = {{"v1"}, {"v2"}};
  const std::string path = ::testing::TempDir() + "/erminer_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(back.rows, t.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/erminer.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace erminer
