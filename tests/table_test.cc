#include "data/table.h"

#include <gtest/gtest.h>

#include "data/domain.h"
#include "data/schema.h"

namespace erminer {
namespace {

TEST(DomainTest, GetOrAddAssignsSequentialCodes) {
  Domain d;
  EXPECT_EQ(d.GetOrAdd("x"), 0);
  EXPECT_EQ(d.GetOrAdd("y"), 1);
  EXPECT_EQ(d.GetOrAdd("x"), 0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.value(1), "y");
}

TEST(DomainTest, NullTokenNeverInserted) {
  Domain d;
  EXPECT_EQ(d.GetOrAdd(""), kNullCode);
  EXPECT_EQ(d.Lookup(""), kNullCode);
  EXPECT_EQ(d.size(), 0u);
}

TEST(DomainTest, LookupMissingReturnsNull) {
  Domain d;
  d.GetOrAdd("a");
  EXPECT_EQ(d.Lookup("b"), kNullCode);
  EXPECT_EQ(d.Lookup("a"), 0);
}

TEST(DomainTest, ValueOrNullRendersNull) {
  Domain d;
  d.GetOrAdd("a");
  EXPECT_EQ(d.ValueOrNull(kNullCode), "");
  EXPECT_EQ(d.ValueOrNull(0), "a");
}

TEST(SchemaTest, IndexOfAndToString) {
  Schema s = Schema::FromNames({"A", "B"});
  EXPECT_EQ(s.IndexOf("B"), 1);
  EXPECT_EQ(s.IndexOf("C"), -1);
  EXPECT_EQ(s.ToString(), "(A, B)");
}

StringTable SmallRaw() {
  StringTable t;
  t.schema = Schema::FromNames({"A", "B"});
  t.rows = {{"x", "1"}, {"y", ""}, {"x", "2"}};
  return t;
}

TEST(StringTableTest, ValidateCatchesRaggedRows) {
  StringTable t = SmallRaw();
  t.rows.push_back({"only-one"});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(StringTableTest, SelectRows) {
  StringTable t = SmallRaw().SelectRows({2, 0});
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[0][1], "2");
  EXPECT_EQ(t.rows[1][0], "x");
}

TEST(TableTest, EncodeDecodeRoundTrip) {
  StringTable raw = SmallRaw();
  Table t = Table::EncodeFresh(raw).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.at(1, 1), kNullCode);
  EXPECT_EQ(t.at(0, 0), t.at(2, 0));  // both "x"
  StringTable back = t.Decode();
  EXPECT_EQ(back.rows, raw.rows);
}

TEST(TableTest, SharedDomainAcrossTables) {
  auto dom_a = std::make_shared<Domain>();
  auto dom_b = std::make_shared<Domain>();
  StringTable raw = SmallRaw();
  Table t1 = Table::Encode(raw, {dom_a, dom_b}).ValueOrDie();
  StringTable raw2 = SmallRaw();
  raw2.rows = {{"x", "3"}};
  Table t2 = Table::Encode(raw2, {dom_a, dom_b}).ValueOrDie();
  // "x" has the same code in both tables.
  EXPECT_EQ(t1.at(0, 0), t2.at(0, 0));
}

TEST(TableTest, DistinctAndNullCounts) {
  Table t = Table::EncodeFresh(SmallRaw()).ValueOrDie();
  EXPECT_EQ(t.DistinctCount(0), 2u);
  EXPECT_EQ(t.DistinctCount(1), 2u);
  EXPECT_EQ(t.NullCount(1), 1u);
  EXPECT_EQ(t.NullCount(0), 0u);
}

TEST(TableTest, HeadSharesDomainsAndTruncates) {
  Table t = Table::EncodeFresh(SmallRaw()).ValueOrDie();
  Table h = t.Head(2);
  EXPECT_EQ(h.num_rows(), 2u);
  EXPECT_EQ(h.domain(0).get(), t.domain(0).get());
  EXPECT_EQ(h.at(0, 0), t.at(0, 0));
  EXPECT_EQ(t.Head(99).num_rows(), 3u);
}

TEST(TableTest, EncodeRejectsWrongDomainCount) {
  EXPECT_FALSE(Table::Encode(SmallRaw(), {std::make_shared<Domain>()}).ok());
}

TEST(TableTest, CellStringRendersNull) {
  Table t = Table::EncodeFresh(SmallRaw()).ValueOrDie();
  EXPECT_EQ(t.CellString(1, 1), "");
  EXPECT_EQ(t.CellString(0, 0), "x");
}

}  // namespace
}  // namespace erminer
