#include "core/cfd_miner.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "eval/experiment.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;

TEST(CfdMinerTest, FindsTheMasterFd) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 20;
  MineResult r = CfdMine(c, o);
  ASSERT_FALSE(r.rules.empty());
  bool found = false;
  for (const auto& sr : r.rules) {
    if (sr.rule.lhs == LhsPairs{{0, 0}, {1, 1}} && sr.rule.pattern.empty()) {
      found = true;
      EXPECT_DOUBLE_EQ(sr.stats.certainty, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfdMinerTest, RulesAreNonRedundantAndBounded) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o;
  o.k = 3;
  o.support_threshold = 10;
  MineResult r = CfdMine(c, o);
  EXPECT_LE(r.rules.size(), 3u);
  EXPECT_TRUE(IsNonRedundant(r.rules));
}

TEST(CfdMinerTest, MaxLhsRespected) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o;
  o.support_threshold = 5;
  CfdMinerOptions copts;
  copts.max_lhs = 1;
  MineResult r = CfdMine(c, o, copts);
  for (const auto& sr : r.rules) {
    EXPECT_LE(sr.rule.LhsSize() + sr.rule.PatternSize(), 1u);
  }
}

TEST(CfdMinerTest, NeverEmitsEmptyLhs) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o;
  o.support_threshold = 2;
  MineResult r = CfdMine(c, o);
  for (const auto& sr : r.rules) EXPECT_GE(sr.rule.LhsSize(), 1u);
}

TEST(CfdMinerTest, CannotConditionOnInputOnlyAttributes) {
  // The paper's core argument: CFDs mined on master cannot carry pattern
  // conditions on input-only attributes like Covid's "overseas".
  GenOptions g;
  g.input_size = 400;
  g.master_size = 300;
  g.seed = 5;
  GeneratedDataset ds = MakeCovid(g).ValueOrDie();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  int overseas = ds.input.schema.IndexOf("overseas");
  ASSERT_GE(overseas, 0);
  MinerOptions o;
  o.support_threshold = 10;
  MineResult r = CfdMine(corpus, o);
  for (const auto& sr : r.rules) {
    EXPECT_FALSE(sr.rule.pattern.SpecifiesAttr(overseas));
    EXPECT_FALSE(sr.rule.HasLhsAttr(overseas));
  }
}

TEST(CfdMinerTest, ConfidenceBelowOneAdmitsNoisyGroups) {
  GenOptions g;
  g.input_size = 300;
  g.master_size = 250;
  g.seed = 9;
  GeneratedDataset ds = MakeCovid(g).ValueOrDie();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  MinerOptions o;
  o.support_threshold = 10;
  CfdMinerOptions strict, loose;
  strict.min_confidence = 1.0;
  loose.min_confidence = 0.6;
  size_t strict_n = CfdMine(corpus, o, strict).rules.size();
  size_t loose_n = CfdMine(corpus, o, loose).rules.size();
  EXPECT_GE(loose_n, strict_n);
}

}  // namespace
}  // namespace erminer
