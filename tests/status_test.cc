#include "util/status.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  ERMINER_RETURN_NOT_OK(FailIfNegative(x));
  ERMINER_ASSIGN_OR_RETURN(int half, HalfOf(x));
  ERMINER_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  *out = quarter;
  return Status::OK();
}

TEST(ResultTest, MacrosPropagateAndAssign) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(UseMacros(-1, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UseMacros(7, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UseMacros(6, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace erminer
