#include "core/violations.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

ScoredRule RuleA(const Corpus& c) {
  EditingRule r;
  r.y_input = 2;
  r.y_master = 1;
  r.AddLhs(0, 0);
  return {r, {}};
}

TEST(ViolationsTest, StrictCertaintyFlagsOnlyUnanimousConflicts) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  // Group a1 is 2/3 certain (not unanimous): rows with a1 never flagged at
  // certainty 1. Group a2 is unanimous (y2); row r2 agrees, so no
  // violations at all.
  ViolationReport rep = DetectViolations(&ev, {RuleA(c)});
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_EQ(rep.num_flagged_rows, 0u);
}

TEST(ViolationsTest, ConflictWithUnanimousGroupIsFlagged) {
  // Build input where a2's row disagrees with master's unanimous y2.
  StringTable in;
  in.schema = Schema::FromNames({"A", "G", "Y"});
  in.rows = {{"a2", "g1", "y1"}, {"a2", "g1", "y2"}};
  StringTable ms;
  ms.schema = Schema::FromNames({"A", "Y"});
  ms.rows = {{"a2", "y2"}, {"a2", "y2"}};
  SchemaMatch m(3);
  m.AddPair(0, 0);
  m.AddPair(2, 1);
  Corpus c = Corpus::Build(in, ms, m, 2, 1).ValueOrDie();
  RuleEvaluator ev(&c);
  ViolationReport rep = DetectViolations(&ev, {RuleA(c)});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].row, 0u);
  EXPECT_EQ(rep.violations[0].current, c.y_domain()->Lookup("y1"));
  EXPECT_EQ(rep.violations[0].expected, c.y_domain()->Lookup("y2"));
  EXPECT_EQ(rep.num_flagged_rows, 1u);
}

TEST(ViolationsTest, LowerCertaintyThresholdFlagsMore) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  ViolationOptions loose;
  loose.min_certainty = 0.6;  // a1's 2/3 group now qualifies
  ViolationReport rep = DetectViolations(&ev, {RuleA(c)}, loose);
  // Row r1 has y2 but argmax y1 -> violation.
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].row, 1u);
}

TEST(ViolationsTest, MissingCellsCountedSeparately) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  ViolationOptions loose;
  loose.min_certainty = 0.6;
  ViolationReport rep = DetectViolations(&ev, {RuleA(c)}, loose);
  EXPECT_EQ(rep.num_missing_covered, 1u);  // row r4's NULL Y

  loose.flag_missing = true;
  ViolationReport with_missing = DetectViolations(&ev, {RuleA(c)}, loose);
  EXPECT_EQ(with_missing.violations.size(), 2u);
}

TEST(ViolationsTest, EmptyRuleSetFindsNothing) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  ViolationReport rep = DetectViolations(&ev, {});
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_EQ(rep.num_missing_covered, 0u);
}

}  // namespace
}  // namespace erminer
