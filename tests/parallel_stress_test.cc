// Concurrency stress: hammer the shared EvalCache and GroupIndex from 8
// threads with a mix of cache hits, cold builds and LRU evictions. The
// assertions catch value corruption; the real payoff is under
// ERMINER_SANITIZE=thread, where TSan turns any data race in the pool, the
// cache mutex or the two-phase index build into a hard failure. Kept well
// under 5 seconds in normal builds.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "core/measures.h"
#include "index/eval_cache.h"
#include "index/group_index.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace erminer {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kItersPerThread = 200;

TEST(ParallelStressTest, EvalCacheAndGroupIndexUnderContention) {
  // Workers of the global pool run inside the hammered calls (cache probe
  // scans, index builds), so external contention and pool scheduling mix.
  SetGlobalThreads(4);
  Corpus corpus = erminer::testing::MakeExactFdCorpus(1200, 300);

  // Every subset of the matched non-Y pairs is a valid LHS; capacity 2
  // forces continuous eviction and rebuild churn.
  std::vector<LhsPairs> keys = {
      {},
      {{0, 0}},
      {{1, 1}},
      {{0, 0}, {1, 1}},
  };
  EvalCache shared_cache(&corpus, /*capacity=*/2);

  // Serial ground truth, computed before any contention: per LHS, how many
  // input rows land in a master group and the sum of group totals.
  struct Expected {
    size_t covered = 0;
    long total = 0;
  };
  auto fingerprint = [&](const EvalCache::Entry& e) {
    Expected x;
    for (const Group* g : e.column->group) {
      if (g == nullptr) continue;
      ++x.covered;
      x.total += g->total;
    }
    return x;
  };
  std::vector<Expected> expected;
  {
    EvalCache serial_cache(&corpus, 16);
    for (const LhsPairs& lhs : keys) {
      expected.push_back(fingerprint(serial_cache.Get(lhs)));
    }
  }

  GroupIndex shared_index =
      GroupIndex::Build(corpus.master(), {0, 1}, /*ym_col=*/2);
  const Group* g00 = shared_index.Find(
      {corpus.master().at(0, 0), corpus.master().at(0, 1)});
  ASSERT_NE(g00, nullptr);
  const long expected_g00_total = g00->total;

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (size_t i = 0; i < kItersPerThread; ++i) {
        const size_t k = (tid * 31 + i) % keys.size();
        Expected got = fingerprint(shared_cache.Get(keys[k]));
        if (got.covered != expected[k].covered ||
            got.total != expected[k].total) {
          ++failures;
        }
        // Concurrent reads of the shared (immutable) index...
        const Group* g = shared_index.Find(
            {corpus.master().at(0, 0), corpus.master().at(0, 1)});
        if (g == nullptr || g->total != expected_g00_total) ++failures;
        // ...while other threads run whole parallel builds of their own.
        if (i % 50 == 0) {
          GroupIndex own = GroupIndex::Build(corpus.master(), {0}, 2);
          if (own.Find({corpus.master().at(0, 0)}) == nullptr) ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  // Churn really happened: more builds than distinct keys proves eviction
  // plus rebuild, the path where a stale-entry bug would hide.
  EXPECT_GT(shared_cache.num_built(), keys.size());
  SetGlobalThreads(1);
}

TEST(ParallelStressTest, SharedEvaluatorConcurrentEvaluate) {
  // RuleEvaluator::Evaluate from many threads against one cache: this is
  // the access pattern EnuMiner's parallel frontier produces, recreated
  // here with external threads so TSan sees maximal interleaving.
  SetGlobalThreads(2);
  Corpus corpus = erminer::testing::MakeExactFdCorpus(1200, 300);
  RuleEvaluator evaluator(&corpus);
  EditingRule rule;
  rule.lhs = {{0, 0}, {1, 1}};
  Cover cover = FullCover(corpus);
  const RuleStats baseline = evaluator.Evaluate(rule, cover);

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kItersPerThread; ++i) {
        RuleStats s = evaluator.Evaluate(rule, cover);
        if (s.support != baseline.support ||
            s.certainty != baseline.certainty ||
            s.quality != baseline.quality) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(evaluator.num_evaluations(),
            1 + kThreads * kItersPerThread);
  SetGlobalThreads(1);
}

}  // namespace
}  // namespace erminer
