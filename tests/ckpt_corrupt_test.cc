// Corruption handling: a damaged snapshot must never load — not partially,
// not silently — and `--resume=latest` must degrade cleanly (skip corrupt
// snapshots, fall back to older ones, start fresh when nothing is
// loadable). Every failure path returns a Status with an actionable
// message; nothing crashes.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/serial.h"
#include "ckpt/snapshot.h"
#include "rl/rl_miner.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;

class CkptCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/erminer_corrupt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(std::filesystem::create_directories(dir_));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(CkptCorruptTest, TruncationAtEveryLengthFailsCleanly) {
  const std::string path = Path("ckpt-000000000001.erck");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "the quick brown fox").ok());
  const std::string good = ReadFile(path);
  ASSERT_GT(good.size(), 20u);
  // Every proper prefix — header cut, payload cut, trailer cut — must be
  // rejected with an error, never a short or garbage payload.
  for (size_t len = 0; len < good.size(); ++len) {
    const std::string cut = Path("cut.erck");
    WriteFile(cut, good.substr(0, len));
    Result<std::string> r = ckpt::ReadSnapshotFile(cut);
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST_F(CkptCorruptTest, EveryBitFlipIsDetected) {
  const std::string path = Path("ckpt-000000000001.erck");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "payload under test").ok());
  const std::string good = ReadFile(path);
  for (size_t byte = 0; byte < good.size(); ++byte) {
    std::string bad = good;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    const std::string flipped = Path("flip.erck");
    WriteFile(flipped, bad);
    Result<std::string> r = ckpt::ReadSnapshotFile(flipped);
    ASSERT_FALSE(r.ok()) << "bit flip at byte " << byte << " loaded";
  }
}

TEST_F(CkptCorruptTest, CrcMismatchMessageNamesBothChecksums) {
  const std::string path = Path("a.erck");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "abcdef").ok());
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 6] ^= 0x01;  // flip a payload bit, CRC stays stored
  WriteFile(path, bytes);
  Result<std::string> r = ckpt::ReadSnapshotFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("CRC mismatch"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("stored"), std::string::npos);
  EXPECT_NE(r.status().message().find("computed"), std::string::npos);
}

TEST_F(CkptCorruptTest, ForeignFileIsNotACheckpoint) {
  const std::string path = Path("a.erck");
  WriteFile(path, "PK\x03\x04 this is a zip, not a checkpoint, padding...");
  Result<std::string> r = ckpt::ReadSnapshotFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not a checkpoint file"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(CkptCorruptTest, FutureFormatVersionIsRefusedWithBothVersions) {
  const std::string path = Path("a.erck");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "abc").ok());
  std::string bytes = ReadFile(path);
  uint32_t future = ckpt::kSnapshotFormatVersion + 41;
  std::memcpy(bytes.data() + sizeof(uint32_t), &future, sizeof future);
  WriteFile(path, bytes);
  Result<std::string> r = ckpt::ReadSnapshotFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected 1, got 42"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(CkptCorruptTest, OversizedDeclaredPayloadDoesNotAllocate) {
  const std::string path = Path("a.erck");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "abc").ok());
  std::string bytes = ReadFile(path);
  uint64_t huge = ~0ull >> 1;  // declared size way past the file
  std::memcpy(bytes.data() + 2 * sizeof(uint32_t), &huge, sizeof huge);
  WriteFile(path, bytes);
  Result<std::string> r = ckpt::ReadSnapshotFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("does not fit"), std::string::npos)
      << r.status().ToString();
}

TEST_F(CkptCorruptTest, MissingFileIsNotFound) {
  Result<std::string> r = ckpt::ReadSnapshotFile(Path("nothing.erck"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(CkptCorruptTest, LoadLatestSkipsCorruptNewestAndFallsBack) {
  ckpt::CheckpointOptions opts;
  opts.dir = dir_;
  opts.keep_last = 10;
  ckpt::CheckpointManager mgr(opts);
  ASSERT_TRUE(mgr.Write(1, "older-good").ok());
  Result<std::string> newest = mgr.Write(2, "newer-soon-corrupt");
  ASSERT_TRUE(newest.ok());
  std::string bytes = ReadFile(*newest);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFile(*newest, bytes);

  std::string resolved;
  std::vector<std::string> skipped;
  Result<std::string> payload =
      ckpt::CheckpointManager::LoadLatest(dir_, &resolved, &skipped);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(*payload, "older-good");
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0], *newest);
}

TEST_F(CkptCorruptTest, LoadLatestWithOnlyCorruptSnapshotsIsNotFound) {
  ckpt::CheckpointOptions opts;
  opts.dir = dir_;
  ckpt::CheckpointManager mgr(opts);
  for (uint64_t e = 1; e <= 3; ++e) {
    Result<std::string> p = mgr.Write(e, "payload");
    ASSERT_TRUE(p.ok());
    std::string bytes = ReadFile(*p);
    bytes[0] ^= 0xFF;  // kill the magic
    WriteFile(*p, bytes);
  }
  std::string resolved;
  std::vector<std::string> skipped;
  Result<std::string> payload =
      ckpt::CheckpointManager::LoadLatest(dir_, &resolved, &skipped);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(skipped.size(), 3u);
}

TEST_F(CkptCorruptTest, StrayTmpFilesAreIgnoredByScansAndPrunedByWrites) {
  ckpt::CheckpointOptions opts;
  opts.dir = dir_;
  opts.keep_last = 2;
  ckpt::CheckpointManager mgr(opts);
  // A crash mid-write leaves a .tmp; it must be invisible to resume.
  WriteFile(Path("ckpt-000000000009.erck.tmp"), "half-written garbage");
  EXPECT_TRUE(ckpt::CheckpointManager::List(dir_).empty());
  EXPECT_EQ(ckpt::CheckpointManager::LatestPath(dir_).status().code(),
            StatusCode::kNotFound);
  // The next durable write cleans it up.
  ASSERT_TRUE(mgr.Write(1, "fresh").ok());
  EXPECT_FALSE(
      std::filesystem::exists(Path("ckpt-000000000009.erck.tmp")));
  ASSERT_EQ(ckpt::CheckpointManager::List(dir_).size(), 1u);
}

// --- resume semantics through the miner ---

RlMinerOptions TinyRl(uint64_t seed = 5) {
  RlMinerOptions o;
  o.base.k = 8;
  o.base.support_threshold = 20;
  o.train_steps = 60;
  o.seed = seed;
  o.dqn.hidden = {8};
  o.dqn.min_replay = 16;
  o.dqn.batch_size = 8;
  return o;
}

TEST_F(CkptCorruptTest, ResumeLatestFromEmptyDirStartsFresh) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions opts = TinyRl();
  opts.checkpoint.dir = dir_;
  opts.resume = "latest";
  RlMiner miner(&c, opts);
  ASSERT_TRUE(miner.Resume().ok());  // nothing to resume: clean fresh start
  EXPECT_TRUE(miner.resumed_from().empty());
  EXPECT_EQ(miner.steps_done(), 0u);
}

TEST_F(CkptCorruptTest, ResumeLatestWithOnlyCorruptSnapshotsStartsFresh) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions opts = TinyRl();
  opts.checkpoint.dir = dir_;
  opts.checkpoint.every_episodes = 1;

  // Produce real snapshots, then corrupt every one of them.
  {
    RlMiner writer(&c, opts);
    writer.Mine();
  }
  std::vector<ckpt::SnapshotRef> list = ckpt::CheckpointManager::List(dir_);
  ASSERT_FALSE(list.empty());
  for (const auto& ref : list) {
    std::string bytes = ReadFile(ref.path);
    bytes[bytes.size() / 3] ^= 0x08;
    WriteFile(ref.path, bytes);
  }

  RlMinerOptions ropts = opts;
  ropts.resume = "latest";
  RlMiner miner(&c, ropts);
  ASSERT_TRUE(miner.Resume().ok());  // degraded to fresh, not an error
  EXPECT_TRUE(miner.resumed_from().empty());
  EXPECT_EQ(miner.steps_done(), 0u);
}

TEST_F(CkptCorruptTest, ResumeExplicitCorruptPathIsAHardError) {
  Corpus c = MakeExactFdCorpus();
  const std::string path = Path("ckpt-000000000001.erck");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "not a miner state").ok());

  RlMinerOptions opts = TinyRl();
  opts.resume = path;  // valid container, wrong contents
  RlMiner miner(&c, opts);
  EXPECT_FALSE(miner.Resume().ok());

  RlMinerOptions missing = TinyRl();
  missing.resume = Path("no-such.erck");  // explicitly named, must not exist
  RlMiner miner2(&c, missing);
  Status st = miner2.Resume();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_F(CkptCorruptTest, ResumeLatestWithoutCheckpointDirIsInvalid) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions opts = TinyRl();
  opts.resume = "latest";  // no checkpoint.dir to scan
  RlMiner miner(&c, opts);
  Status st = miner.Resume();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(CkptCorruptTest, SnapshotOfWrongComponentShapeIsRejected) {
  // A structurally valid snapshot whose payload came from a different
  // configuration (here: a truncated serial stream) must fail LoadState,
  // not half-apply.
  Corpus c = MakeExactFdCorpus();
  ckpt::Writer w;
  w.U64(3);  // claims steps_done=3, then the stream just ends
  const std::string path = Path("ckpt-000000000007.erck");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, w.buffer()).ok());
  RlMinerOptions opts = TinyRl();
  opts.resume = path;
  RlMiner miner(&c, opts);
  Status st = miner.Resume();
  ASSERT_FALSE(st.ok());
  // The miner must still be usable as a fresh instance after the failure.
  EXPECT_EQ(miner.steps_done(), 0u);
}

}  // namespace
}  // namespace erminer
