// RlMiner::Infer behaviour: the greedy episode, the low-epsilon top-up
// episodes when the pool is short of K, and the inference budget cap.

#include <gtest/gtest.h>

#include "rl/rl_miner.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;

RlMinerOptions BaseOptions() {
  RlMinerOptions o;
  o.base.k = 10;
  o.base.support_threshold = 15;
  o.train_steps = 300;
  o.dqn.hidden = {16};
  o.seed = 3;
  return o;
}

TEST(InferenceTest, UntrainedMinerStillFillsKViaTopUpEpisodes) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions o = BaseOptions();
  RlMiner miner(&c, o);  // no Train() at all
  MineResult r = miner.Infer();
  // The exact corpus has plenty of supported rules; exploration episodes
  // must accumulate K of them (or exhaust the budget trying).
  EXPECT_GE(r.rules.size(), 5u);
  EXPECT_LE(r.inference_steps, o.max_inference_steps);
}

TEST(InferenceTest, BudgetCapRespected) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions o = BaseOptions();
  o.base.k = 10000;          // unreachable
  o.max_inference_steps = 40;
  RlMiner miner(&c, o);
  MineResult r = miner.Infer();
  EXPECT_LE(r.inference_steps, 40u);
}

TEST(InferenceTest, TrainedMinerInferenceIsShort) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions o = BaseOptions();
  RlMiner miner(&c, o);
  miner.Train();
  MineResult r = miner.Infer();
  // After training, the pool already holds >= K rules: one greedy episode
  // suffices and the budget is barely touched.
  EXPECT_EQ(r.rules.size(), o.base.k);
  EXPECT_LT(r.inference_steps, o.max_inference_steps);
}

TEST(InferenceTest, RepeatedInferIsIdempotentOnResults) {
  Corpus c = MakeExactFdCorpus();
  RlMiner miner(&c, BaseOptions());
  miner.Train();
  MineResult a = miner.Infer();
  MineResult b = miner.Infer();
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].rule, b.rules[i].rule);
  }
}

}  // namespace
}  // namespace erminer
