#include "core/rule_io.h"

#include <gtest/gtest.h>

#include "core/enu_miner.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;
using erminer::testing::MakeTinyCorpus;

std::vector<ScoredRule> SampleRules(const Corpus& c) {
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 2;
  return EnuMine(c, o).rules;
}

TEST(RuleIoTest, RoundTripPreservesRulesAndStats) {
  Corpus c = MakeTinyCorpus();
  auto rules = SampleRules(c);
  ASSERT_FALSE(rules.empty());
  std::string text = RulesToText(rules, c);
  auto back = RulesFromText(text, c).ValueOrDie();
  ASSERT_EQ(back.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(back[i].rule, rules[i].rule) << "rule " << i;
    EXPECT_EQ(back[i].stats.support, rules[i].stats.support);
    EXPECT_NEAR(back[i].stats.certainty, rules[i].stats.certainty, 1e-6);
    EXPECT_NEAR(back[i].stats.quality, rules[i].stats.quality, 1e-6);
  }
}

TEST(RuleIoTest, RoundTripOnLargerCorpus) {
  Corpus c = MakeExactFdCorpus();
  auto rules = SampleRules(c);
  ASSERT_GT(rules.size(), 2u);
  auto back = RulesFromText(RulesToText(rules, c), c).ValueOrDie();
  ASSERT_EQ(back.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(back[i].rule, rules[i].rule);
  }
}

TEST(RuleIoTest, NegatedConditionRoundTrips) {
  Corpus c = MakeTinyCorpus();
  EditingRule r;
  r.y_input = 2;
  r.y_master = 1;
  r.AddLhs(0, 0);
  r.pattern.Add({1, {c.input().domain(1)->Lookup("g1")}, "!g1", true});
  std::string text = RulesToText({{r, {}}}, c);
  EXPECT_NE(text.find("!G=g1"), std::string::npos);
  auto back = RulesFromText(text, c).ValueOrDie();
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rule, r);
  EXPECT_TRUE(back[0].rule.pattern.items()[0].negated);
}

TEST(RuleIoTest, EscapesSeparatorCharacters) {
  StringTable in;
  in.schema = Schema::FromNames({"a b", "Y"});
  in.rows = {{"v,1|x;=", "y"}, {"v,1|x;=", "y"}};
  StringTable ms;
  ms.schema = Schema::FromNames({"a b", "Y"});
  ms.rows = {{"v,1|x;=", "y"}};
  SchemaMatch m(2);
  m.AddPair(0, 0);
  Corpus c = Corpus::Build(in, ms, m, 1, 1).ValueOrDie();
  EditingRule r;
  r.y_input = 1;
  r.y_master = 1;
  r.AddLhs(0, 0);
  ValueCode v = c.input().domain(0)->Lookup("v,1|x;=");
  ASSERT_NE(v, kNullCode);
  // A rule whose pattern value and attribute name contain every separator.
  EditingRule r2 = r;
  r2.lhs.clear();
  r2.AddLhs(0, 0);
  EditingRule with_pattern;
  with_pattern.y_input = 1;
  with_pattern.y_master = 1;
  with_pattern.AddLhs(0, 0);
  // Pattern on attr 0 while it's in LHS is syntactically allowed.
  with_pattern.pattern.Add({0, {v}, "v,1|x;="});
  auto back =
      RulesFromText(RulesToText({{with_pattern, {}}}, c), c).ValueOrDie();
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rule, with_pattern);
}

TEST(RuleIoTest, CommentsAndBlankLinesIgnored) {
  Corpus c = MakeTinyCorpus();
  auto back =
      RulesFromText("# header\n\n  \nlhs=A:A y=Y:Y tp= S=4 C=0.75 Q=0\n", c)
          .ValueOrDie();
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rule.lhs, (LhsPairs{{0, 0}}));
  EXPECT_EQ(back[0].stats.support, 4);
}

TEST(RuleIoTest, UnknownAttributeFails) {
  Corpus c = MakeTinyCorpus();
  EXPECT_FALSE(RulesFromText("lhs=Bogus:A y=Y:Y tp= S=1 C=1 Q=1\n", c).ok());
  EXPECT_FALSE(RulesFromText("lhs=A:Bogus y=Y:Y tp= S=1 C=1 Q=1\n", c).ok());
}

TEST(RuleIoTest, UnknownPatternValueFails) {
  Corpus c = MakeTinyCorpus();
  EXPECT_FALSE(
      RulesFromText("lhs=A:A y=Y:Y tp=G=never_seen S=1 C=1 Q=1\n", c).ok());
}

TEST(RuleIoTest, MalformedLinesFail) {
  Corpus c = MakeTinyCorpus();
  EXPECT_FALSE(RulesFromText("nonsense\n", c).ok());
  EXPECT_FALSE(RulesFromText("lhs=A y=Y:Y tp= S=1 C=1 Q=1\n", c).ok());
  EXPECT_FALSE(RulesFromText("lhs=A:A y=Y:Y tp=G S=1 C=1 Q=1\n", c).ok());
  EXPECT_FALSE(
      RulesFromText("lhs=A:A,A:A y=Y:Y tp= S=1 C=1 Q=1\n", c).ok());
}

TEST(RuleIoTest, FileRoundTrip) {
  Corpus c = MakeTinyCorpus();
  auto rules = SampleRules(c);
  const std::string path = ::testing::TempDir() + "/erminer_rules_test.txt";
  ASSERT_TRUE(WriteRulesFile(rules, c, path).ok());
  auto back = ReadRulesFile(path, c).ValueOrDie();
  EXPECT_EQ(back.size(), rules.size());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadRulesFile("/no/such/file", c).ok());
}

}  // namespace
}  // namespace erminer
