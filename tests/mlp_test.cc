// MLP correctness: finite-difference gradient checks for every parameter,
// weight copy, and (de)serialization.

#include "nn/mlp.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/loss.h"

namespace erminer {
namespace {

/// Scalar loss used for gradient checking: L = 0.5 * sum(out^2).
float LossOf(Mlp* mlp, const Tensor& x) {
  Tensor out = mlp->Forward(x);
  float l = 0;
  for (float v : out.data()) l += 0.5f * v * v;
  return l;
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  Rng rng(3);
  Mlp mlp({4, 6, 3}, &rng);
  Tensor x(2, 4);
  for (float& v : x.data()) v = static_cast<float>(rng.NextGaussian());

  // Analytic gradients: dL/dout = out.
  Tensor out = mlp.Forward(x);
  mlp.ZeroGrad();
  mlp.Backward(out);
  auto params = mlp.Parameters();
  auto grads = mlp.Gradients();

  const float eps = 1e-3f;
  int checked = 0;
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t i = 0; i < params[p]->size(); i += 5) {  // spot-check
      float orig = params[p]->data()[i];
      params[p]->data()[i] = orig + eps;
      float lp = LossOf(&mlp, x);
      params[p]->data()[i] = orig - eps;
      float lm = LossOf(&mlp, x);
      params[p]->data()[i] = orig;
      float numeric = (lp - lm) / (2 * eps);
      float analytic = grads[p]->data()[i];
      EXPECT_NEAR(numeric, analytic,
                  5e-2f * std::max(1.0f, std::fabs(numeric)))
          << "param " << p << " index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(MlpTest, DeepNetGradientCheck) {
  Rng rng(7);
  Mlp mlp({3, 5, 5, 2}, &rng);
  Tensor x(1, 3);
  for (float& v : x.data()) v = static_cast<float>(rng.NextGaussian());
  Tensor out = mlp.Forward(x);
  mlp.ZeroGrad();
  mlp.Backward(out);
  auto params = mlp.Parameters();
  auto grads = mlp.Gradients();
  const float eps = 1e-3f;
  // Check the first weight matrix thoroughly (deepest gradient path).
  for (size_t i = 0; i < params[0]->size(); ++i) {
    float orig = params[0]->data()[i];
    params[0]->data()[i] = orig + eps;
    float lp = LossOf(&mlp, x);
    params[0]->data()[i] = orig - eps;
    float lm = LossOf(&mlp, x);
    params[0]->data()[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), grads[0]->data()[i], 5e-2f);
  }
}

TEST(MlpTest, BackwardAccumulatesUntilZeroGrad) {
  Rng rng(9);
  Mlp mlp({2, 3, 1}, &rng);
  Tensor x(1, 2, 1.0f);
  Tensor out = mlp.Forward(x);
  mlp.ZeroGrad();
  mlp.Backward(out);
  float g1 = mlp.Gradients()[0]->data()[0];
  mlp.Forward(x);
  mlp.Backward(out);
  EXPECT_NEAR(mlp.Gradients()[0]->data()[0], 2 * g1, 1e-5f);
  mlp.ZeroGrad();
  EXPECT_FLOAT_EQ(mlp.Gradients()[0]->data()[0], 0.0f);
}

TEST(MlpTest, CopyWeightsMakesNetsAgree) {
  Rng rng(11);
  Mlp a({3, 4, 2}, &rng);
  Mlp b({3, 4, 2}, &rng);
  Tensor x(1, 3, 0.5f);
  b.CopyWeightsFrom(a);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(MlpTest, SaveLoadRoundTrip) {
  Rng rng(13);
  Mlp a({5, 8, 3}, &rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  Mlp b = Mlp::Load(ss).ValueOrDie();
  EXPECT_EQ(b.dims(), a.dims());
  Tensor x(2, 5, 0.25f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(MlpTest, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "not a weight file";
  EXPECT_FALSE(Mlp::Load(ss).ok());
}

TEST(LossTest, HuberValueAndGrad) {
  EXPECT_FLOAT_EQ(HuberLoss(0.5f), 0.125f);
  EXPECT_FLOAT_EQ(HuberLoss(2.0f), 1.5f);     // delta*(|d|-delta/2)
  EXPECT_FLOAT_EQ(HuberGrad(0.5f), 0.5f);
  EXPECT_FLOAT_EQ(HuberGrad(2.0f), 1.0f);
  EXPECT_FLOAT_EQ(HuberGrad(-2.0f), -1.0f);
  EXPECT_FLOAT_EQ(HuberLoss(-2.0f), HuberLoss(2.0f));
}

TEST(LossTest, MseValueAndGrad) {
  Tensor pred = Tensor::FromData(1, 2, {1, 3});
  Tensor target = Tensor::FromData(1, 2, {0, 1});
  auto [loss, grad] = MseLoss(pred, target);
  EXPECT_NEAR(loss, (1 + 4) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 0), 2 * 1 / 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 1), 2 * 2 / 2.0f, 1e-6f);
}

}  // namespace
}  // namespace erminer
