#include "core/rule_explain.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

EditingRule TinyRule(const Corpus& c, bool with_pattern) {
  EditingRule r;
  r.y_input = 2;
  r.y_master = 1;
  r.AddLhs(0, 0);
  if (with_pattern) {
    r.pattern.Add({1, {c.input().domain(1)->Lookup("g1")}, "g1"});
  }
  return r;
}

TEST(RuleExplainTest, StatsMatchEvaluator) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RuleExplanation ex = ExplainRule(&ev, TinyRule(c, false));
  EXPECT_EQ(ex.cover_size, 5u);
  EXPECT_EQ(ex.applicable, 4u);
  EXPECT_EQ(ex.stats.support, 4);
  EXPECT_NEAR(ex.stats.certainty, 0.75, 1e-12);
}

TEST(RuleExplainTest, ProseNamesAttributesAndNumbers) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RuleExplanation ex = ExplainRule(&ev, TinyRule(c, true));
  EXPECT_NE(ex.prose.find("G = g1"), std::string::npos);
  EXPECT_NE(ex.prose.find("A/A"), std::string::npos);
  EXPECT_NE(ex.prose.find("applies to 3 tuples"), std::string::npos);
}

TEST(RuleExplainTest, ExamplesPreferChanges) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RuleExplanation ex = ExplainRule(&ev, TinyRule(c, false), 4);
  ASSERT_FALSE(ex.examples.empty());
  // Rows r1 (y2 -> y1) and r4 (NULL -> y1) are actual changes; they must
  // come before the agreeing rows.
  EXPECT_NE(ex.examples[0].current_value, ex.examples[0].proposed_value);
  EXPECT_NE(ex.examples[1].current_value, ex.examples[1].proposed_value);
}

TEST(RuleExplainTest, MaxExamplesHonored) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  EXPECT_LE(ExplainRule(&ev, TinyRule(c, false), 2).examples.size(), 2u);
  EXPECT_EQ(ExplainRule(&ev, TinyRule(c, false), 0).examples.size(), 0u);
}

TEST(RuleExplainTest, FormatContainsExamples) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  std::string text = FormatExplanation(ExplainRule(&ev, TinyRule(c, false)));
  EXPECT_NE(text.find("pattern cover: 5 tuples"), std::string::npos);
  EXPECT_NE(text.find("-> 'y1'"), std::string::npos);
}

TEST(RuleExplainTest, NegatedConditionRendered) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  EditingRule r = TinyRule(c, false);
  r.pattern.Add({1, {c.input().domain(1)->Lookup("g2")}, "!g2", true});
  RuleExplanation ex = ExplainRule(&ev, r);
  EXPECT_NE(ex.prose.find("G != g2"), std::string::npos);
}

}  // namespace
}  // namespace erminer
