#include "rl/incremental_miner.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;

IncrementalMiner::Options SmallOptions() {
  IncrementalMiner::Options o;
  o.rl.base.k = 6;
  o.rl.base.support_threshold = 20;
  o.rl.train_steps = 400;
  o.rl.dqn.hidden = {32};
  o.rl.seed = 13;
  o.fine_tune_fraction = 0.25;
  return o;
}

TEST(IncrementalMinerTest, FirstRoundTrainsLaterRoundsFineTune) {
  Corpus full = MakeExactFdCorpus(300, 80);
  Corpus half = full.TruncateRows(150, 40);
  IncrementalMiner miner(&full, SmallOptions());

  MineResult first = miner.Mine(half);
  EXPECT_EQ(miner.rounds(), 1u);
  EXPECT_FALSE(first.rules.empty());

  MineResult second = miner.Mine(full);
  EXPECT_EQ(miner.rounds(), 2u);
  EXPECT_FALSE(second.rules.empty());
  // Fine-tuning trains a fraction of the steps, so it is (much) cheaper.
  EXPECT_LT(second.train_seconds, first.train_seconds);
  // The planted rule survives the increment.
  bool found = false;
  for (const auto& sr : second.rules) {
    found |= (sr.rule.lhs == LhsPairs{{0, 0}, {1, 1}});
  }
  EXPECT_TRUE(found);
}

TEST(IncrementalMinerTest, RuleQualityHoldsAcrossRounds) {
  Corpus full = MakeExactFdCorpus(240, 70);
  IncrementalMiner miner(&full, SmallOptions());
  MineResult first = miner.Mine(full.TruncateRows(120, 35));
  MineResult second = miner.Mine(full.TruncateRows(180, 55));
  MineResult third = miner.Mine(full);
  ASSERT_FALSE(first.rules.empty());
  ASSERT_FALSE(third.rules.empty());
  EXPECT_TRUE(IsNonRedundant(third.rules));
  EXPECT_GE(third.rules[0].stats.certainty, 0.9);
  (void)second;
}

TEST(IncrementalMinerTest, SharedSpaceHasStableDims) {
  Corpus full = MakeExactFdCorpus(200, 60);
  IncrementalMiner miner(&full, SmallOptions());
  size_t dim = miner.space().state_dim();
  miner.Mine(full.TruncateRows(100, 30));
  EXPECT_EQ(miner.space().state_dim(), dim);
  miner.Mine(full);
  EXPECT_EQ(miner.space().state_dim(), dim);
}

}  // namespace
}  // namespace erminer
