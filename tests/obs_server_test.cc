// Telemetry server tests: handler correctness without sockets (HandlePath),
// a real loopback scrape against an ephemeral port, Prometheus exposition
// validity (TYPE lines, cumulative buckets, +Inf), counter monotonicity
// across scrapes, and the determinism contract — mined rules bit-identical
// with the server and sampler armed or not, at several thread counts.

#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/enu_miner.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace erminer::obs {
namespace {

using erminer::testing::SeededCorpusCache;

/// One-shot HTTP GET over loopback; returns the raw response (headers and
/// body). The server closes after one response, so read-to-EOF is complete.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

double ScrapedValue(const std::string& exposition, const std::string& line_prefix) {
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t eol = exposition.find('\n', pos);
    if (eol == std::string::npos) eol = exposition.size();
    const std::string line = exposition.substr(pos, eol - pos);
    if (line.rfind(line_prefix, 0) == 0) {
      return std::strtod(line.c_str() + line_prefix.size(), nullptr);
    }
    pos = eol + 1;
  }
  return -1.0;
}

TEST(HandlePathTest, KnownAndUnknownPaths) {
  std::string body, type;
  EXPECT_TRUE(TelemetryServer::HandlePath("/metrics", &body, &type));
  EXPECT_EQ(type.rfind("text/plain; version=0.0.4", 0), 0u);
  EXPECT_TRUE(TelemetryServer::HandlePath("/metrics.json", &body, &type));
  EXPECT_EQ(type, "application/json");
  EXPECT_EQ(body.front(), '{');
  EXPECT_TRUE(TelemetryServer::HandlePath("/trace.json", &body, &type));
  EXPECT_TRUE(TelemetryServer::HandlePath("/healthz", &body, &type));
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_TRUE(TelemetryServer::HandlePath("/", &body, &type));
  EXPECT_FALSE(TelemetryServer::HandlePath("/nope", &body, &type));
}

TEST(HandlePathTest, PrometheusExpositionShape) {
  ERMINER_COUNT("obs_server_test/scrapes", 3);
  ERMINER_GAUGE_SET("obs_server_test/gauge", 2.5);
  ERMINER_HISTOGRAM("obs_server_test/latency", 0.5);
  ERMINER_HISTOGRAM("obs_server_test/latency", 50.0);
  std::string body, type;
  ASSERT_TRUE(TelemetryServer::HandlePath("/metrics", &body, &type));
  // Names are prefixed and slash-mangled; each family carries a TYPE line.
  EXPECT_NE(body.find("# TYPE erminer_obs_server_test_scrapes counter"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE erminer_obs_server_test_gauge gauge"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE erminer_obs_server_test_latency histogram"),
            std::string::npos);
  EXPECT_NE(body.find("erminer_obs_server_test_latency_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(body.find("erminer_obs_server_test_latency_sum"),
            std::string::npos);
  EXPECT_NE(body.find("erminer_obs_server_test_latency_count 2"),
            std::string::npos);
  EXPECT_GE(ScrapedValue(body, "erminer_obs_server_test_scrapes "), 3.0);
  EXPECT_EQ(ScrapedValue(body, "erminer_obs_server_test_gauge "), 2.5);
  // The phase gauge is always present.
  EXPECT_NE(body.find("erminer_phase{phase=\""), std::string::npos);
}

TEST(HandlePathTest, HistogramBucketsAreCumulative) {
  ERMINER_HISTOGRAM("obs_server_test/cumulative", 0.001);
  ERMINER_HISTOGRAM("obs_server_test/cumulative", 1e9);
  std::string body, type;
  ASSERT_TRUE(TelemetryServer::HandlePath("/metrics", &body, &type));
  // Every bucket count must be <= the next one, ending at the total count.
  const std::string needle = "erminer_obs_server_test_cumulative_bucket{le=";
  std::vector<double> counts;
  size_t pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    size_t space = body.find(' ', pos + needle.size());
    ASSERT_NE(space, std::string::npos);
    counts.push_back(std::strtod(body.c_str() + space + 1, nullptr));
    pos = space;
  }
  ASSERT_GE(counts.size(), 2u);  // at least one bound plus +Inf
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i - 1], counts[i]) << "bucket " << i;
  }
  EXPECT_EQ(counts.back(),
            ScrapedValue(body, "erminer_obs_server_test_cumulative_count "));
}

TEST(TelemetryServerTest, LoopbackScrapeAndMonotonicCounters) {
  TelemetryServer server;
  std::string error;
  TelemetryServerOptions options;  // port 0: ephemeral
  ASSERT_TRUE(server.Start(options, &error)) << error;
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  ERMINER_COUNT("obs_server_test/monotonic", 1);
  const std::string first = HttpGet(server.port(), "/metrics");
  ASSERT_NE(first.find("HTTP/1.1 200 OK"), std::string::npos);
  const double v1 = ScrapedValue(first, "erminer_obs_server_test_monotonic ");
  ASSERT_GE(v1, 1.0);

  ERMINER_COUNT("obs_server_test/monotonic", 5);
  const std::string second = HttpGet(server.port(), "/metrics");
  const double v2 = ScrapedValue(second, "erminer_obs_server_test_monotonic ");
  EXPECT_EQ(v2, v1 + 5.0);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"uptime_seconds\""), std::string::npos);
  const std::string missing = HttpGet(server.port(), "/not-a-path");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(TelemetryServerTest, StopWithoutStartIsSafe) {
  TelemetryServer server;
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

std::vector<ScoredRule> MineAt(long threads, bool telemetry) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("nursery", 1200, 400, 77);
  TelemetryServer server;
  Sampler sampler({/*interval_ms=*/5});
  if (telemetry) {
    std::string error;
    EXPECT_TRUE(server.Start({}, &error)) << error;
    EXPECT_TRUE(sampler.Start(&error)) << error;
  }
  SetGlobalThreads(threads);
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  MinerOptions options;
  options.k = 20;
  options.support_threshold = 20.0;
  MineResult result = EnuMine(corpus, options);
  SetGlobalThreads(1);
  if (telemetry) {
    // Scrape while stopping is near: one last pull proves reads are safe
    // concurrent with mining having just finished.
    HttpGet(server.port(), "/metrics");
    sampler.Stop();
    server.Stop();
  }
  return result.rules;
}

// The determinism contract from the acceptance criteria: the server and
// sampler are pull-only, so the mined rules are bit-identical whether or
// not telemetry is armed, at every thread count.
TEST(TelemetryServerTest, MiningIsBitIdenticalWithTelemetryArmed) {
  for (long threads : {1L, 4L}) {
    std::vector<ScoredRule> off = MineAt(threads, /*telemetry=*/false);
    std::vector<ScoredRule> on = MineAt(threads, /*telemetry=*/true);
    ASSERT_EQ(off.size(), on.size()) << "threads=" << threads;
    for (size_t i = 0; i < off.size(); ++i) {
      EXPECT_EQ(off[i].rule, on[i].rule) << "rule " << i;
      EXPECT_EQ(off[i].stats.support, on[i].stats.support);
      EXPECT_EQ(off[i].stats.certainty, on[i].stats.certainty);
      EXPECT_EQ(off[i].stats.quality, on[i].stats.quality);
    }
  }
}

}  // namespace
}  // namespace erminer::obs
