// DQN variants (double DQN, prioritized replay) and the environment's
// ablation toggles.

#include <gtest/gtest.h>

#include "core/environment.h"
#include "rl/dqn.h"
#include "rl/rl_miner.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;
using erminer::testing::MakeTinyCorpus;

DqnOptions VariantDqn() {
  DqnOptions o;
  o.hidden = {16};
  o.batch_size = 8;
  o.min_replay = 8;
  o.target_sync_every = 10;
  o.learning_rate = 5e-3f;
  o.gamma = 0.9f;
  o.seed = 31;
  return o;
}

void FeedBandit(DqnAgent* agent, int steps) {
  std::vector<uint8_t> mask = {1, 1};
  for (int i = 0; i < steps; ++i) {
    Transition t;
    t.state = {0};
    t.action = i % 2;
    t.reward = (t.action == 1) ? 1.0f : 0.0f;
    t.next_state = {0};
    t.next_mask = mask;
    t.done = true;
    agent->Observe(std::move(t));
    agent->TrainStep();
  }
}

TEST(DqnVariantsTest, DoubleDqnLearnsBandit) {
  DqnOptions o = VariantDqn();
  o.double_dqn = true;
  DqnAgent agent(2, 2, o);
  FeedBandit(&agent, 300);
  EXPECT_EQ(agent.ActGreedy({0}, {1, 1}), 1);
  EXPECT_NEAR(agent.QValues({0})[1], 1.0f, 0.25f);
}

TEST(DqnVariantsTest, PrioritizedReplayLearnsBandit) {
  DqnOptions o = VariantDqn();
  o.prioritized = true;
  DqnAgent agent(2, 2, o);
  FeedBandit(&agent, 300);
  EXPECT_EQ(agent.ActGreedy({0}, {1, 1}), 1);
}

TEST(DqnVariantsTest, AllVariantsCombined) {
  DqnOptions o = VariantDqn();
  o.double_dqn = true;
  o.prioritized = true;
  DqnAgent agent(2, 2, o);
  FeedBandit(&agent, 400);
  EXPECT_EQ(agent.ActGreedy({0}, {1, 1}), 1);
}

TEST(DqnVariantsTest, ReplaySizeReportsActiveBuffer) {
  DqnOptions o = VariantDqn();
  o.prioritized = true;
  o.replay_capacity = 16;
  DqnAgent agent(2, 2, o);
  EXPECT_EQ(agent.replay_size(), 0u);
  FeedBandit(&agent, 5);
  EXPECT_EQ(agent.replay_size(), 5u);
}

class EnvAblationFixture : public ::testing::Test {
 protected:
  EnvAblationFixture()
      : corpus_(MakeTinyCorpus()),
        space_(ActionSpace::Build(corpus_, {})),
        evaluator_(&corpus_) {}
  Corpus corpus_;
  ActionSpace space_;
  RuleEvaluator evaluator_;
};

TEST_F(EnvAblationFixture, NoFrontierBonusGivesPlainUtility) {
  EnvOptions opts;
  opts.support_threshold = 2;
  opts.frontier_bonus = false;
  opts.normalize_utility = false;
  Environment env(&corpus_, &space_, &evaluator_, opts);
  env.Reset();
  auto sr = env.Step(0);  // {(A,A)}: S=4, C=0.75, Q=0
  EXPECT_NEAR(sr.reward, UtilityOf(4, 0.75, 0.0), 1e-5);
}

TEST_F(EnvAblationFixture, NoGlobalMaskAllowsRegeneration) {
  EnvOptions opts;
  opts.support_threshold = 2;
  opts.use_global_mask = false;
  Environment env(&corpus_, &space_, &evaluator_, opts);
  env.Reset();
  env.Step(0);                     // descend into {(A,A)}
  env.Step(space_.stop_action());  // pop it back from the queue
  // With the global mask off, re-taking a pattern action that regenerates
  // an existing rule is allowed and handled as a no-op growth.
  auto mask = env.CurrentMask();
  int32_t g1 = space_.PatternActionsOfAttr(1)[0];
  ASSERT_EQ(mask[static_cast<size_t>(g1)], 1);
  size_t nodes_before = env.nodes_this_episode();
  env.Step(g1);  // fresh rule {(A,A), G=g1}: grows
  env.Step(space_.stop_action());
  // Try to regenerate it from the {(A,A)} node again.
  if (!env.done() && env.current_state() == RuleKey{0}) {
    auto sr = env.Step(g1);
    EXPECT_EQ(env.nodes_this_episode(), nodes_before + 1);
    (void)sr;
  }
}

TEST_F(EnvAblationFixture, NoRewardReuseReevaluates) {
  EnvOptions opts;
  opts.support_threshold = 2;
  opts.reuse_rewards = false;
  Environment env(&corpus_, &space_, &evaluator_, opts);
  env.Reset();
  env.Step(0);
  size_t evals = evaluator_.num_evaluations();
  env.Reset();
  env.Step(0);
  EXPECT_GT(evaluator_.num_evaluations(), evals);
}

TEST(RlMinerVariantsTest, MineWithAllVariantsOn) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions o;
  o.base.k = 6;
  o.base.support_threshold = 20;
  o.train_steps = 400;
  o.dqn.hidden = {32};
  o.dqn.double_dqn = true;
  o.dqn.prioritized = true;
  o.seed = 9;
  RlMiner miner(&c, o);
  MineResult r = miner.Mine();
  EXPECT_FALSE(r.rules.empty());
  EXPECT_TRUE(IsNonRedundant(r.rules));
}

}  // namespace
}  // namespace erminer
