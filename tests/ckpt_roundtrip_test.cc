// Round-trip property tests for every checkpoint-serializable component:
// restoring a saved state and continuing must be indistinguishable — bit
// for bit — from never having stopped. Each test drives the original and
// the restored object through the same post-restore workload and compares
// outputs exactly.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/serial.h"
#include "ckpt/snapshot.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "rl/prioritized_replay.h"
#include "rl/replay_buffer.h"
#include "rl/rl_miner.h"
#include "rl/schedule.h"
#include "rl/training_log.h"
#include "test_util.h"
#include "util/random.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;

std::string TempDir(const char* tag) {
  std::string dir = ::testing::TempDir() + "/erminer_ckpt_" + tag + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SerialTest, PrimitivesRoundTrip) {
  ckpt::Writer w;
  w.U8(7);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-1234567890123ll);
  w.F32(3.14159f);
  w.F64(-2.718281828459045);
  w.Bytes("hello\0world");
  w.Vec(std::vector<int32_t>{5, -6, 7});
  ckpt::Reader r(w.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  float f32;
  double f64;
  std::string bytes;
  std::vector<int32_t> vec;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I32(&i32).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F32(&f32).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Bytes(&bytes).ok());
  ASSERT_TRUE(r.Vec(&vec).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f32, 3.14159f);
  EXPECT_EQ(f64, -2.718281828459045);
  EXPECT_EQ(bytes, std::string("hello"));  // C-string literal stops at NUL
  EXPECT_EQ(vec, (std::vector<int32_t>{5, -6, 7}));
}

TEST(SerialTest, ReaderRejectsShortBuffer) {
  ckpt::Writer w;
  w.U32(1);
  ckpt::Reader r(w.buffer());
  uint64_t v;
  EXPECT_FALSE(r.U64(&v).ok());
}

TEST(SerialTest, RngRoundTripContinuesIdentically) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) a.Next();  // advance off the seed state
  ckpt::Writer w;
  ckpt::SaveRng(a, &w);
  Rng b(999);  // different seed: everything must come from the state words
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(ckpt::LoadRng(&r, &b).ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
  // Derived draws (doubles, zipf with its lazy CDF cache) also agree.
  EXPECT_EQ(a.NextDouble(), b.NextDouble());
  EXPECT_EQ(a.NextZipf(50, 1.1), b.NextZipf(50, 1.1));
  EXPECT_EQ(a.NextGaussian(), b.NextGaussian());
}

Transition MakeTransition(Rng* rng, int i) {
  Transition t;
  t.state = {static_cast<int32_t>(i % 5)};
  t.action = static_cast<int32_t>(rng->NextUint64(7));
  t.reward = static_cast<float>(rng->NextDouble()) - 0.5f;
  t.next_state = {static_cast<int32_t>(i % 5), static_cast<int32_t>(5 + i % 2)};
  t.next_mask.assign(8, 0);
  t.next_mask[rng->NextUint64(8)] = 1;
  t.next_mask.back() = 1;
  t.done = (i % 11) == 0;
  return t;
}

void ExpectTransitionEq(const Transition& a, const Transition& b) {
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_EQ(a.next_state, b.next_state);
  EXPECT_EQ(a.next_mask, b.next_mask);
  EXPECT_EQ(a.done, b.done);
}

TEST(ReplayRoundTripTest, UniformBufferContentsAndEvictionOrder) {
  Rng rng(3);
  ReplayBuffer a(16);
  for (int i = 0; i < 40; ++i) a.Add(MakeTransition(&rng, i));  // wrapped
  ckpt::Writer w;
  a.SaveState(&w);
  ReplayBuffer b(16);
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(b.LoadState(&r).ok());
  ASSERT_TRUE(r.AtEnd());
  ASSERT_EQ(a.size(), b.size());
  // Same contents sampled identically...
  Rng sa(77), sb(77);
  auto xs = a.Sample(32, &sa);
  auto ys = b.Sample(32, &sb);
  for (size_t i = 0; i < xs.size(); ++i) ExpectTransitionEq(*xs[i], *ys[i]);
  // ...and the same write position: future Adds overwrite the same slots.
  Rng more_a(9), more_b(9);
  for (int i = 0; i < 10; ++i) {
    a.Add(MakeTransition(&more_a, 100 + i));
    b.Add(MakeTransition(&more_b, 100 + i));
  }
  Rng ta(5), tb(5);
  xs = a.Sample(64, &ta);
  ys = b.Sample(64, &tb);
  for (size_t i = 0; i < xs.size(); ++i) ExpectTransitionEq(*xs[i], *ys[i]);
}

TEST(ReplayRoundTripTest, LoadRejectsOversizedState) {
  Rng rng(3);
  ReplayBuffer big(32);
  for (int i = 0; i < 32; ++i) big.Add(MakeTransition(&rng, i));
  ckpt::Writer w;
  big.SaveState(&w);
  ReplayBuffer small(8);
  ckpt::Reader r(w.buffer());
  Status st = small.LoadState(&r);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("capacity"), std::string::npos);
}

TEST(ReplayRoundTripTest, PrioritizedBufferSumTreeAndPosition) {
  Rng rng(4);
  PrioritizedReplay a(16);
  for (int i = 0; i < 40; ++i) a.Add(MakeTransition(&rng, i));
  // Perturb priorities so the tree holds accumulated incremental updates.
  a.UpdatePriorities({0, 3, 7, 12}, {0.9f, 0.01f, 2.5f, 0.3f});
  a.UpdatePriorities({3, 7}, {1.7f, 0.05f});
  ckpt::Writer w;
  a.SaveState(&w);
  PrioritizedReplay b(16);
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(b.LoadState(&r).ok());
  ASSERT_TRUE(r.AtEnd());
  ASSERT_EQ(a.size(), b.size());
  // Priority-proportional sampling must pick the same indices with the same
  // importance weights — this exercises the exact sum-tree bits, including
  // internal nodes (FindPrefix routes through them).
  Rng sa(11), sb(11);
  PrioritizedSample pa = a.Sample(64, &sa);
  PrioritizedSample pb = b.Sample(64, &sb);
  ASSERT_EQ(pa.indices, pb.indices);
  for (size_t i = 0; i < pa.weights.size(); ++i) {
    EXPECT_EQ(pa.weights[i], pb.weights[i]);
  }
  // New additions keep using the restored max_priority_ and write position.
  Rng ma(6), mb(6);
  for (int i = 0; i < 8; ++i) {
    a.Add(MakeTransition(&ma, 200 + i));
    b.Add(MakeTransition(&mb, 200 + i));
  }
  Rng ta(13), tb(13);
  pa = a.Sample(64, &ta);
  pb = b.Sample(64, &tb);
  EXPECT_EQ(pa.indices, pb.indices);
}

TEST(AdamRoundTripTest, MomentsContinueIdentically) {
  // Drive an optimizer, snapshot it, restore into a fresh one and continue
  // both on identical gradients: parameters must stay bitwise equal.
  Rng rng(8);
  auto make_params = [&]() {
    std::vector<Tensor> p;
    p.emplace_back(3, 4, 0.0f);
    p.emplace_back(1, 4, 0.0f);
    for (auto& t : p) {
      for (auto& x : t.data()) x = static_cast<float>(rng.NextGaussian());
    }
    return p;
  };
  std::vector<Tensor> pa = make_params();
  std::vector<Tensor> pb = pa;  // identical starting parameters
  Adam a(0.01f);
  std::vector<Tensor> grads = make_params();
  auto ptrs = [](std::vector<Tensor>& v) {
    std::vector<Tensor*> out;
    for (auto& t : v) out.push_back(&t);
    return out;
  };
  auto pap = ptrs(pa), pbp = ptrs(pb), gp = ptrs(grads);
  Rng ga(15);
  for (int i = 0; i < 20; ++i) {
    for (auto* g : gp) {
      for (auto& x : g->data()) x = static_cast<float>(ga.NextGaussian());
    }
    a.Step(pap, gp);
    // Keep pb in lockstep so both optimizers later see the same params.
    for (size_t j = 0; j < pa.size(); ++j) pb[j] = pa[j];
  }
  ckpt::Writer w;
  a.SaveState(&w);
  Adam b(0.01f);
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(b.LoadState(&r).ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(a.steps(), b.steps());
  for (int i = 0; i < 20; ++i) {
    for (auto* g : gp) {
      for (auto& x : g->data()) x = static_cast<float>(ga.NextGaussian());
    }
    a.Step(pap, gp);
    b.Step(pbp, gp);
  }
  for (size_t j = 0; j < pa.size(); ++j) {
    for (size_t k = 0; k < pa[j].size(); ++k) {
      ASSERT_EQ(pa[j].data()[k], pb[j].data()[k])
          << "param " << j << " diverged at " << k;
    }
  }
}

TEST(ScheduleTest, EpsilonIsPureFunctionOfStep) {
  // LinearSchedule carries no mutable state: resuming at steps_done_=s must
  // read the same epsilon an uninterrupted run read at step s.
  LinearSchedule eps(1.0, 0.05, 1000, 0.6);
  LinearSchedule again(1.0, 0.05, 1000, 0.6);
  for (size_t s : {0u, 1u, 17u, 300u, 599u, 600u, 601u, 999u, 5000u}) {
    EXPECT_EQ(eps.Value(s), again.Value(s));
  }
}

TEST(TrainingLogRoundTripTest, HistoryAndNumberingContinue) {
  TrainingLog a;
  for (int e = 0; e < 5; ++e) {
    a.BeginEpisode();
    a.RecordStep(0.5 * e, 0.1);
    a.RecordStep(-0.25, 0.0);
    a.EndEpisode(static_cast<size_t>(e));
  }
  ckpt::Writer w;
  a.SaveState(&w);
  TrainingLog b;
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(b.LoadState(&r).ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(a.ToCsv(), b.ToCsv());
  // The next episode numbers itself as a continuation.
  b.BeginEpisode();
  b.RecordStep(1.0, 0.2);
  b.EndEpisode(1);
  EXPECT_EQ(b.episodes().back().episode, 5u);
}

RlMinerOptions CkptRl(uint64_t seed = 21) {
  RlMinerOptions o;
  o.base.k = 8;
  o.base.support_threshold = 20;
  o.train_steps = 300;
  o.seed = seed;
  o.dqn.hidden = {16, 16};
  o.dqn.min_replay = 32;
  o.dqn.batch_size = 16;
  o.dqn.target_sync_every = 25;
  return o;
}

std::string RulesText(const MineResult& r, const Corpus& c) {
  std::string out;
  for (const auto& sr : r.rules) {
    char stats[128];
    std::snprintf(stats, sizeof stats, " S=%ld C=%a Q=%a U=%a\n",
                  sr.stats.support, sr.stats.certainty, sr.stats.quality,
                  sr.stats.utility);
    out += sr.rule.ToString(c) + stats;  // %a: exact float bits in text
  }
  return out;
}

TEST(RlMinerRoundTripTest, RestoredMinerContinuesInLockstepWithOriginal) {
  // Pure serialization fidelity: snapshot a miner at an arbitrary point
  // (here even mid-horizon), restore into a fresh instance, and drive both
  // through the same further work. They share one state, so every
  // downstream artifact must agree bit for bit.
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions opts = CkptRl();
  RlMiner a(&c, opts);
  a.Train(120);
  ckpt::Writer w;
  ASSERT_TRUE(a.SaveState(&w).ok());

  RlMiner b(&c, opts);
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(b.LoadState(&r).ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(b.steps_done(), a.steps_done());
  EXPECT_EQ(b.episodes_done(), a.episodes_done());
  EXPECT_EQ(b.training_log().ToCsv(), a.training_log().ToCsv());

  a.Train(97);
  b.Train(97);
  EXPECT_EQ(a.training_log().ToCsv(), b.training_log().ToCsv());
  EXPECT_EQ(a.steps_done(), b.steps_done());
  MineResult ra = a.Infer();
  MineResult rb = b.Infer();
  EXPECT_EQ(RulesText(ra, c), RulesText(rb, c));
  EXPECT_EQ(ra.nodes_explored, rb.nodes_explored);
  std::vector<float> qa = a.agent().QValues(RuleKey{});
  std::vector<float> qb = b.agent().QValues(RuleKey{});
  ASSERT_EQ(qa.size(), qb.size());
  for (size_t i = 0; i < qa.size(); ++i) ASSERT_EQ(qa[i], qb[i]);
}

TEST(RlMinerRoundTripTest, MidRunSnapshotResumeMatchesUninterrupted) {
  // Resume semantics: load a cadence snapshot from the middle of a run and
  // let Mine() finish the horizon — the result must be bit-identical to
  // the run that was never interrupted. Checkpoints are episode-aligned,
  // which is exactly what makes this replay exact; the prioritized +
  // dueling + double-DQN variant exercises every optional serializer.
  Corpus c = MakeExactFdCorpus();
  std::string dir = TempDir("midrun");
  RlMinerOptions opts = CkptRl(33);
  opts.dqn.prioritized = true;
  opts.dqn.dueling = true;
  opts.dqn.double_dqn = true;
  opts.checkpoint.dir = dir;
  opts.checkpoint.every_episodes = 1;
  opts.checkpoint.keep_last = 1000;  // keep the whole history to pick from

  RlMiner full(&c, opts);
  MineResult full_result = full.Mine();
  std::vector<ckpt::SnapshotRef> list = ckpt::CheckpointManager::List(dir);
  ASSERT_GT(list.size(), 4u);
  const ckpt::SnapshotRef& mid = list[list.size() / 2];
  ASSERT_GT(mid.episode, 0u);
  ASSERT_LT(mid.episode, full.episodes_done());
  Result<std::string> payload = ckpt::ReadSnapshotFile(mid.path);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();

  RlMinerOptions ropts = opts;
  ropts.checkpoint.dir.clear();  // don't disturb the snapshot history
  RlMiner second(&c, ropts);
  ckpt::Reader r(*payload);
  ASSERT_TRUE(second.LoadState(&r).ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(second.episodes_done(), mid.episode);
  MineResult resumed_result = second.Mine();

  // Bit-identical rules, stats, training history and counters. The cache
  // hit/evaluation counts legitimately differ (memoization was dropped), so
  // rule_evaluations is deliberately NOT compared.
  EXPECT_EQ(RulesText(full_result, c), RulesText(resumed_result, c));
  EXPECT_EQ(full.training_log().ToCsv(), second.training_log().ToCsv());
  EXPECT_EQ(full.steps_done(), second.steps_done());
  EXPECT_EQ(full.episodes_done(), second.episodes_done());
  EXPECT_EQ(full_result.nodes_explored, resumed_result.nodes_explored);
  std::vector<float> qa = full.agent().QValues(RuleKey{});
  std::vector<float> qb = second.agent().QValues(RuleKey{});
  ASSERT_EQ(qa.size(), qb.size());
  for (size_t i = 0; i < qa.size(); ++i) ASSERT_EQ(qa[i], qb[i]);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotFileTest, WriteReadRoundTrip) {
  std::string dir = TempDir("snapfile");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  std::string path = dir + "/a.erck";
  std::string payload = "some\x00payload\xff with bytes";
  payload[4] = '\0';
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, payload).ok());
  Result<std::string> back = ckpt::ReadSnapshotFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
  // No .tmp residue after a clean write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManagerTest, WriteListLatestAndRetention) {
  std::string dir = TempDir("mgr");
  ckpt::CheckpointOptions opts;
  opts.dir = dir;
  opts.every_episodes = 1;
  opts.keep_last = 2;
  ckpt::CheckpointManager mgr(opts);
  for (uint64_t e : {1, 2, 3, 4, 5}) {
    Result<std::string> p = mgr.Write(e, "payload-" + std::to_string(e));
    ASSERT_TRUE(p.ok()) << p.status().ToString();
  }
  std::vector<ckpt::SnapshotRef> list = ckpt::CheckpointManager::List(dir);
  ASSERT_EQ(list.size(), 2u);  // keep_last pruned the rest
  EXPECT_EQ(list[0].episode, 4u);
  EXPECT_EQ(list[1].episode, 5u);
  Result<std::string> latest = ckpt::CheckpointManager::LatestPath(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, list[1].path);
  std::string resolved;
  std::vector<std::string> skipped;
  Result<std::string> payload =
      ckpt::CheckpointManager::LoadLatest(dir, &resolved, &skipped);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "payload-5");
  EXPECT_TRUE(skipped.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManagerTest, ResumeLatestEndToEndThroughMiner) {
  Corpus c = MakeExactFdCorpus();
  std::string dir = TempDir("miner");
  RlMinerOptions opts = CkptRl(55);
  opts.train_steps = 200;
  opts.checkpoint.dir = dir;
  opts.checkpoint.every_episodes = 2;

  RlMiner full(&c, opts);
  MineResult full_result = full.Mine();
  ASSERT_FALSE(ckpt::CheckpointManager::List(dir).empty());

  // A second miner with resume=latest picks up the end-of-training snapshot
  // and has nothing left to train; its mining output matches exactly.
  RlMinerOptions ropts = opts;
  ropts.resume = "latest";
  RlMiner resumed(&c, ropts);
  ASSERT_TRUE(resumed.Resume().ok());
  EXPECT_EQ(resumed.steps_done(), full.steps_done());
  EXPECT_FALSE(resumed.resumed_from().empty());
  MineResult resumed_result = resumed.Mine();
  EXPECT_EQ(RulesText(full_result, c), RulesText(resumed_result, c));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace erminer
