#include "data/corpus.h"

#include <gtest/gtest.h>

#include "data/schema_match.h"
#include "test_util.h"

namespace erminer {
namespace {

TEST(SchemaMatchTest, ByNameIsCaseInsensitive) {
  Schema in = Schema::FromNames({"City", "zip", "Other"});
  Schema ms = Schema::FromNames({"ZIP", "city"});
  SchemaMatch m = SchemaMatch::ByName(in, ms);
  EXPECT_TRUE(m.Contains(0, 1));
  EXPECT_TRUE(m.Contains(1, 0));
  EXPECT_TRUE(m.Matches(2).empty());
  EXPECT_EQ(m.num_pairs(), 2u);
}

TEST(SchemaMatchTest, AddPairDeduplicates) {
  SchemaMatch m(2);
  m.AddPair(0, 1);
  m.AddPair(0, 1);
  EXPECT_EQ(m.num_pairs(), 1u);
}

TEST(SchemaMatchTest, MatchesOutOfRangeIsEmpty) {
  SchemaMatch m(2);
  EXPECT_TRUE(m.Matches(-1).empty());
  EXPECT_TRUE(m.Matches(5).empty());
}

TEST(CorpusTest, MatchedColumnsShareDomains) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  // A (input col 0) shares with master col 0; Y (input 2) with master 1.
  EXPECT_EQ(c.input().domain(0).get(), c.master().domain(0).get());
  EXPECT_EQ(c.input().domain(2).get(), c.master().domain(1).get());
  // Unmatched G has a private domain.
  EXPECT_NE(c.input().domain(1).get(), c.master().domain(0).get());
  // Same string -> same code across tables.
  EXPECT_EQ(c.input().at(0, 0), c.master().at(0, 0));  // "a1"
}

TEST(CorpusTest, TargetIndices) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  EXPECT_EQ(c.y_input(), 2);
  EXPECT_EQ(c.y_master(), 1);
  EXPECT_EQ(c.y_domain().get(), c.input().domain(2).get());
}

TEST(CorpusTest, QualityLabelDefaultsToInputValue) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  EXPECT_EQ(c.QualityLabel(0), c.input().at(0, 2));
  EXPECT_EQ(c.QualityLabel(4), kNullCode);  // null Y cell
}

TEST(CorpusTest, SetLabelsOverridesQualityLabel) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  ASSERT_TRUE(c.SetLabels({"y2", "y2", "y2", "y2", "y1"}).ok());
  ASSERT_TRUE(c.has_labels());
  Domain* dom = c.y_domain().get();
  EXPECT_EQ(c.QualityLabel(0), dom->Lookup("y2"));
  EXPECT_EQ(c.QualityLabel(4), dom->Lookup("y1"));
}

TEST(CorpusTest, SetLabelsWrongSizeFails) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  EXPECT_FALSE(c.SetLabels({"y1"}).ok());
}

TEST(CorpusTest, TruncateRowsKeepsDomainsAndLabels) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  ASSERT_TRUE(c.SetLabels({"y1", "y2", "y2", "y1", "y1"}).ok());
  Corpus t = c.TruncateRows(3, 2);
  EXPECT_EQ(t.input().num_rows(), 3u);
  EXPECT_EQ(t.master().num_rows(), 2u);
  EXPECT_EQ(t.input().domain(0).get(), c.input().domain(0).get());
  EXPECT_EQ(t.labels().size(), 3u);
  EXPECT_EQ(t.input().at(1, 0), c.input().at(1, 0));
}

TEST(CorpusTest, BuildRejectsBadTarget) {
  StringTable in, ms;
  in.schema = Schema::FromNames({"A"});
  in.rows = {{"x"}};
  ms.schema = Schema::FromNames({"A"});
  ms.rows = {{"x"}};
  SchemaMatch m(1);
  EXPECT_FALSE(Corpus::Build(in, ms, m, 5, 0).ok());
  EXPECT_FALSE(Corpus::Build(in, ms, m, 0, 5).ok());
}

TEST(CorpusTest, BuildRejectsMatchWidthMismatch) {
  StringTable in, ms;
  in.schema = Schema::FromNames({"A", "Y"});
  in.rows = {{"x", "y"}};
  ms.schema = Schema::FromNames({"A", "Y"});
  ms.rows = {{"x", "y"}};
  SchemaMatch m(5);
  EXPECT_FALSE(Corpus::Build(in, ms, m, 1, 1).ok());
}

TEST(CorpusTest, ContinuousAttributeBinnedJointly) {
  StringTable in, ms;
  std::vector<Attribute> attrs = {{"age", AttributeKind::kContinuous},
                                  {"Y", AttributeKind::kDiscrete}};
  in.schema = Schema(attrs);
  ms.schema = Schema(attrs);
  for (int i = 0; i < 40; ++i) in.rows.push_back({std::to_string(i), "a"});
  for (int i = 40; i < 80; ++i) ms.rows.push_back({std::to_string(i), "a"});
  SchemaMatch m(2);
  m.AddPair(0, 0);
  CorpusOptions opts;
  opts.n_split = 4;
  Corpus c = Corpus::Build(in, ms, m, 1, 1, opts).ValueOrDie();
  // The age column became <= 4 discrete range labels shared across tables.
  EXPECT_LE(c.input().domain(0)->size(), 4u);
  EXPECT_EQ(c.input().domain(0).get(), c.master().domain(0).get());
}

}  // namespace
}  // namespace erminer
