// Environment (Algs. 2 and 4) behaviour: rewards, tree growth, traversal,
// episode termination, cross-episode caching.

#include "core/environment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;
using erminer::testing::MakeTinyCorpus;

class EnvFixture : public ::testing::Test {
 protected:
  EnvFixture()
      : corpus_(MakeTinyCorpus()),
        space_(ActionSpace::Build(corpus_, {})),
        evaluator_(&corpus_) {}

  Environment MakeEnv(EnvOptions opts = {}) {
    if (opts.support_threshold == 100) opts.support_threshold = 2;
    return Environment(&corpus_, &space_, &evaluator_, opts);
  }

  Corpus corpus_;
  ActionSpace space_;
  RuleEvaluator evaluator_;
};

TEST_F(EnvFixture, ResetStartsAtRoot) {
  Environment env = MakeEnv();
  env.Reset();
  EXPECT_FALSE(env.done());
  EXPECT_TRUE(env.current_state().empty());
  EXPECT_EQ(env.nodes_this_episode(), 1u);
}

TEST_F(EnvFixture, StopOnEmptyQueueEndsEpisodeWithTheta) {
  Environment env = MakeEnv();
  env.Reset();
  auto sr = env.Step(space_.stop_action());
  EXPECT_FLOAT_EQ(sr.reward, 0.01f);
  EXPECT_TRUE(sr.done);
  EXPECT_TRUE(env.done());
}

TEST_F(EnvFixture, SupportedRuleGetsScaledUtilityPlusFrontierBonus) {
  Environment env = MakeEnv();
  env.Reset();
  auto sr = env.Step(0);  // add (A, A): S=4, C=0.75, Q=0
  double ls = std::log(5.0);
  float base = static_cast<float>(std::log(4.0) * std::log(4.0) * 0.75 /
                                  (ls * ls));
  // Root has no children and no cached reward (0), so bonus doubles it.
  EXPECT_NEAR(sr.reward, 2 * base, 1e-5);
  EXPECT_FALSE(sr.done);
  EXPECT_EQ(env.leaves().size(), 1u);
  EXPECT_EQ(sr.next_state, (RuleKey{0}));  // descended into the child
}

TEST_F(EnvFixture, SecondChildOfRootGetsNoBonus) {
  Environment env = MakeEnv();
  env.Reset();
  env.Step(0);                         // first child (descends)
  env.Step(space_.stop_action());      // back to the queued child
  // The queue held the child; current is now the child node {0}.
  EXPECT_EQ(env.current_state(), (RuleKey{0}));
}

TEST_F(EnvFixture, UnsupportedRuleGetsPenaltyAndNoDescend) {
  EnvOptions opts;
  opts.support_threshold = 100;  // nothing reaches it
  opts.k = 50;
  Environment env(&corpus_, &space_, &evaluator_, opts);
  env.Reset();
  auto sr = env.Step(0);
  EXPECT_FLOAT_EQ(sr.reward, -0.01f);
  // No queue entries -> episode over.
  EXPECT_TRUE(sr.done);
  EXPECT_TRUE(env.leaves().empty());
}

TEST_F(EnvFixture, EpisodeEndsAtKLeaves) {
  EnvOptions opts;
  opts.support_threshold = 1;
  opts.k = 1;
  Environment env(&corpus_, &space_, &evaluator_, opts);
  env.Reset();
  auto sr = env.Step(0);  // first valid leaf
  EXPECT_TRUE(sr.done);
  EXPECT_EQ(env.leaves().size(), 1u);
}

TEST_F(EnvFixture, RewardCachePersistsAcrossEpisodes) {
  Environment env = MakeEnv();
  env.Reset();
  env.Step(0);
  size_t evals_after_first = evaluator_.num_evaluations();
  size_t cache_size = env.reward_cache_size();
  env.Reset();
  auto sr = env.Step(0);  // same rule: reward reused, but stats cached too
  EXPECT_EQ(env.reward_cache_size(), cache_size);
  EXPECT_EQ(evaluator_.num_evaluations(), evals_after_first);
  EXPECT_FALSE(sr.done);
}

TEST_F(EnvFixture, GlobalPoolDeduplicatesAcrossEpisodes) {
  Environment env = MakeEnv();
  env.Reset();
  env.Step(0);
  env.Reset();
  env.Step(0);
  EXPECT_EQ(env.global_pool().size(), 1u);
  EXPECT_EQ(env.total_nodes(), 2u);
}

TEST_F(EnvFixture, MaskReflectsTreeState) {
  Environment env = MakeEnv();
  env.Reset();
  env.Step(0);  // now at child {0}
  auto mask = env.CurrentMask();
  EXPECT_EQ(mask[0], 0);  // (A,A) bound
  EXPECT_EQ(mask.back(), 1);
}

TEST_F(EnvFixture, CertainRuleNotRefinedFurther) {
  // On the exact-FD corpus the rule {(A,A),(B,B)} has C=1: stepping into it
  // must not enqueue it for refinement.
  Corpus corpus = MakeExactFdCorpus();
  ActionSpace space = ActionSpace::Build(corpus, {});
  RuleEvaluator evaluator(&corpus);
  EnvOptions opts;
  opts.support_threshold = 2;
  opts.k = 100;
  Environment env(&corpus, &space, &evaluator, opts);
  env.Reset();
  // Find the actions for (A,A) and (B,B).
  int32_t a_act = space.LhsActionsOfAttr(0)[0];
  int32_t b_act = space.LhsActionsOfAttr(1)[0];
  env.Step(a_act);
  auto sr = env.Step(b_act);
  // The C=1 node is a leaf but not descended into: traversal moved back to
  // a queued node (the {(A,A)} child).
  EXPECT_EQ(sr.next_state, (RuleKey{a_act}));
  EXPECT_EQ(env.leaves().size(), 2u);
}

TEST_F(EnvFixture, StepResultTransitionFieldsConsistent) {
  Environment env = MakeEnv();
  env.Reset();
  auto sr = env.Step(0);
  EXPECT_TRUE(sr.state.empty());
  EXPECT_EQ(sr.action, 0);
  EXPECT_EQ(sr.next_mask.size(), space_.num_actions());
  EXPECT_EQ(sr.next_mask.back(), 1);
}

}  // namespace
}  // namespace erminer
