// The stall watchdog's contract: a run making no observable progress
// produces exactly one stall artifact (naming the span every thread sits
// in), and a run that is making progress never triggers.

#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace erminer::obs {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(WatchdogTest, RejectsDisabledDeadline) {
  Watchdog watchdog;
  std::string error;
  EXPECT_FALSE(watchdog.Start(WatchdogOptions{}, &error));
  EXPECT_FALSE(error.empty());
  WatchdogOptions negative;
  negative.deadline_sec = -1;
  EXPECT_FALSE(watchdog.Start(negative, &error));
}

TEST(WatchdogTest, StallProducesExactlyOneArtifact) {
  const std::string dir = ::testing::TempDir() + "wd_stall";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  Watchdog& watchdog = Watchdog::Global();
  WatchdogOptions opts;
  opts.deadline_sec = 0.3;
  opts.check_interval_sec = 0.05;
  opts.artifact_dir = dir;
  opts.burst_sec = 0.1;  // keep the stall capture quick
  std::string error;
  ASSERT_TRUE(watchdog.Start(opts, &error)) << error;

  // A busy-spinning thread that touches no counter: CPU activity without
  // observable progress is exactly what the watchdog must flag. Started
  // after the watchdog so its span lands in the (now armed) span stack.
  std::atomic<bool> stop{false};
  std::thread spinner([&stop] {
    ERMINER_SPAN("test/stall_spin");
    volatile uint64_t acc = 0;
    while (!stop.load(std::memory_order_relaxed)) acc += 1;
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (watchdog.stalls_detected() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // One artifact per stall episode: with activity still flat, waiting
  // several more deadlines must not fire again.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  spinner.join();
  watchdog.Stop();

  EXPECT_EQ(watchdog.stalls_detected(), 1u);
  const std::string artifact = ReadFileOrEmpty(dir + "/stall-0.txt");
  ASSERT_FALSE(artifact.empty());
  EXPECT_NE(artifact.find("test/stall_spin"), std::string::npos) << artifact;
  EXPECT_NE(artifact.find("cpu profile"), std::string::npos);
  EXPECT_TRUE(ReadFileOrEmpty(dir + "/stall-1.txt").empty());
}

TEST(WatchdogTest, ActiveRunNeverTriggers) {
  Watchdog& watchdog = Watchdog::Global();
  WatchdogOptions opts;
  opts.deadline_sec = 0.3;
  opts.check_interval_sec = 0.05;
  opts.artifact_dir = ::testing::TempDir();
  std::string error;
  ASSERT_TRUE(watchdog.Start(opts, &error)) << error;

  // Steady counter activity at a fraction of the deadline interval — the
  // fingerprint moves every check, so the watchdog must stay quiet.
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1200);
  while (std::chrono::steady_clock::now() < end) {
    ERMINER_COUNT("test/watchdog_progress", 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  watchdog.Stop();

  EXPECT_GT(watchdog.checks_performed(), 5u);
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
}

TEST(WatchdogTest, FingerprintMovesWithActivity) {
  const uint64_t before = Watchdog::ActivityFingerprint();
  ERMINER_COUNT("test/watchdog_fingerprint", 1);
  EXPECT_NE(Watchdog::ActivityFingerprint(), before);
  // Self-referential metrics must NOT move it (a scraper polling a stalled
  // run would otherwise mask the stall forever).
  const uint64_t after = Watchdog::ActivityFingerprint();
  ERMINER_COUNT("watchdog/checks", 1);
  ERMINER_COUNT("profiler/samples", 1);
  ERMINER_COUNT("telemetry/requests", 1);
  EXPECT_EQ(Watchdog::ActivityFingerprint(), after);
}

}  // namespace
}  // namespace erminer::obs
