#include "rl/training_log.h"

#include <gtest/gtest.h>

#include "rl/rl_miner.h"
#include "test_util.h"

namespace erminer {
namespace {

TEST(TrainingLogTest, AccumulatesEpisodes) {
  TrainingLog log;
  log.BeginEpisode();
  log.RecordStep(1.0, 0.5);
  log.RecordStep(2.0, 0.0);  // zero loss = skipped update, not averaged
  log.RecordStep(-0.5, 0.3);
  log.EndEpisode(4);
  ASSERT_EQ(log.episodes().size(), 1u);
  const EpisodeStats& e = log.episodes()[0];
  EXPECT_EQ(e.episode, 0u);
  EXPECT_EQ(e.steps, 3u);
  EXPECT_EQ(e.leaves, 4u);
  EXPECT_DOUBLE_EQ(e.total_reward, 2.5);
  EXPECT_DOUBLE_EQ(e.mean_loss, 0.4);
}

TEST(TrainingLogTest, RecentMeanReturnWindows) {
  TrainingLog log;
  for (int i = 0; i < 5; ++i) {
    log.BeginEpisode();
    log.RecordStep(static_cast<double>(i), 0.0);
    log.EndEpisode(0);
  }
  EXPECT_DOUBLE_EQ(log.RecentMeanReturn(2), 3.5);  // episodes 3, 4
  EXPECT_DOUBLE_EQ(log.RecentMeanReturn(100), 2.0);
  EXPECT_DOUBLE_EQ(TrainingLog().RecentMeanReturn(), 0.0);
}

TEST(TrainingLogTest, CsvHasHeaderAndRows) {
  TrainingLog log;
  log.BeginEpisode();
  log.RecordStep(1.0, 0.1);
  log.EndEpisode(2);
  std::string csv = log.ToCsv();
  EXPECT_NE(csv.find("episode,steps,leaves,total_reward,mean_loss"),
            std::string::npos);
  EXPECT_NE(csv.find("0,1,2,1,0.1"), std::string::npos);
}

TEST(TrainingLogTest, RlMinerPopulatesLog) {
  Corpus c = erminer::testing::MakeExactFdCorpus();
  RlMinerOptions o;
  o.base.k = 5;
  o.base.support_threshold = 20;
  o.train_steps = 200;
  o.dqn.hidden = {16};
  RlMiner miner(&c, o);
  miner.Train();
  const TrainingLog& log = miner.training_log();
  ASSERT_FALSE(log.empty());
  size_t total_steps = 0;
  for (const auto& e : log.episodes()) total_steps += e.steps;
  EXPECT_EQ(total_steps, miner.steps_done());
}

}  // namespace
}  // namespace erminer
