#include "data/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace erminer {
namespace {

Table MakeTable(std::vector<std::vector<std::string>> rows,
                std::vector<std::string> names) {
  StringTable raw;
  raw.schema = Schema::FromNames(names);
  raw.rows = std::move(rows);
  return Table::EncodeFresh(raw).ValueOrDie();
}

TEST(ColumnStatsTest, CountsAndEntropy) {
  Table t = MakeTable({{"a"}, {"a"}, {"b"}, {""}, {"b"}}, {"X"});
  ColumnStats s = ComputeColumnStats(t, 0);
  EXPECT_EQ(s.name, "X");
  EXPECT_EQ(s.num_rows, 5u);
  EXPECT_EQ(s.num_nulls, 1u);
  EXPECT_EQ(s.num_distinct, 2u);
  EXPECT_NEAR(s.entropy, 1.0, 1e-9);  // 2/4, 2/4
  ASSERT_EQ(s.top_values.size(), 2u);
  EXPECT_EQ(s.top_values[0].second, 2u);
}

TEST(ColumnStatsTest, TopKOrderAndLimit) {
  Table t = MakeTable({{"c"}, {"a"}, {"a"}, {"a"}, {"b"}, {"b"}}, {"X"});
  ColumnStats s = ComputeColumnStats(t, 0, 2);
  ASSERT_EQ(s.top_values.size(), 2u);
  EXPECT_EQ(s.top_values[0].first, "a");
  EXPECT_EQ(s.top_values[1].first, "b");
}

TEST(ColumnStatsTest, ConstantColumnZeroEntropy) {
  Table t = MakeTable({{"k"}, {"k"}, {"k"}}, {"X"});
  EXPECT_NEAR(ComputeColumnStats(t, 0).entropy, 0.0, 1e-12);
}

TEST(NmiTest, FunctionalDependencyIsOne) {
  // B = f(A) exactly.
  Table t = MakeTable({{"a1", "b1"}, {"a1", "b1"}, {"a2", "b2"},
                       {"a3", "b1"}, {"a2", "b2"}},
                      {"A", "B"});
  EXPECT_NEAR(NormalizedMutualInformation(t, 0, 1), 1.0, 1e-9);
}

TEST(NmiTest, IndependenceIsNearZero) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({"a" + std::to_string(i % 2),
                    "b" + std::to_string((i / 2) % 2)});
  }
  Table t = MakeTable(rows, {"A", "B"});
  EXPECT_NEAR(NormalizedMutualInformation(t, 0, 1), 0.0, 1e-9);
}

TEST(NmiTest, AsymmetryOfDetermination) {
  // A (4 values) determines B (2 values) but not vice versa.
  Table t = MakeTable({{"a1", "b1"}, {"a2", "b1"}, {"a3", "b2"},
                       {"a4", "b2"}},
                      {"A", "B"});
  double a_to_b = NormalizedMutualInformation(t, 0, 1);
  double b_to_a = NormalizedMutualInformation(t, 1, 0);
  EXPECT_NEAR(a_to_b, 1.0, 1e-9);
  EXPECT_LT(b_to_a, 0.75);
}

TEST(NmiTest, NullsAreSkipped) {
  Table t = MakeTable({{"a1", "b1"}, {"", "b2"}, {"a1", ""}, {"a1", "b1"}},
                      {"A", "B"});
  EXPECT_NEAR(NormalizedMutualInformation(t, 0, 1), 1.0, 1e-9);
}

TEST(NmiTest, ConstantTargetIsTriviallyDetermined) {
  Table t = MakeTable({{"a1", "k"}, {"a2", "k"}}, {"A", "B"});
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(t, 0, 1), 1.0);
}

TEST(RankDeterminantsTest, OrdersBySignal) {
  // col0 determines target exactly; col1 is independent noise.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({"k" + std::to_string(i % 4),
                    "n" + std::to_string((i * 7) % 5),
                    "y" + std::to_string(i % 4)});
  }
  Table t = MakeTable(rows, {"Key", "Noise", "Y"});
  auto ranked = RankDeterminants(t, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].determinant, 0u);
  EXPECT_NEAR(ranked[0].nmi, 1.0, 1e-9);
  EXPECT_GT(ranked[0].nmi, ranked[1].nmi);
}

}  // namespace
}  // namespace erminer
