// Sampler tests: deterministic ring eviction and stream contents via direct
// SampleOnce calls (no background thread), counter-delta semantics of the
// JSONL stream, and the threaded Start/Stop lifecycle.

#include "obs/sampler.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace erminer::obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

TEST(SamplerTest, RingEvictsOldestDeterministically) {
  SamplerOptions options;
  options.ring_capacity = 3;
  Sampler sampler(options);
  for (int i = 0; i < 5; ++i) sampler.SampleOnce();
  EXPECT_EQ(sampler.num_samples_taken(), 5u);
  std::vector<Sample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 3u);  // two oldest evicted
  // Oldest first, timestamps non-decreasing.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_seconds, samples[i - 1].t_seconds);
  }
}

TEST(SamplerTest, StreamWritesOneDeltaLinePerSample) {
  const std::string path =
      ::testing::TempDir() + "/erminer_sampler_stream_test.jsonl";
  std::remove(path.c_str());
  SamplerOptions options;
  options.stream_path = path;
  {
    Sampler sampler(options);
    // SampleOnce alone doesn't open the stream — Start does. Drive the
    // stream through the real lifecycle but take extra deterministic ticks
    // ourselves.
    std::string error;
    ASSERT_TRUE(sampler.Start(&error)) << error;
    ERMINER_COUNT("obs_sampler_test/work", 7);
    sampler.SampleOnce();
    ERMINER_COUNT("obs_sampler_test/work", 4);
    sampler.Stop();  // takes the final sample, closes the stream
  }
  std::vector<std::string> lines = ReadLines(path);
  // At least the manual tick and Stop's final sample; the background
  // thread's own ticks may or may not land before Stop wins the race.
  ASSERT_GE(lines.size(), 2u);
  // Every line is one object with the fixed fields.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_FALSE(std::isnan(JsonNumber(line, "t")));
    EXPECT_FALSE(std::isnan(JsonNumber(line, "cpu_seconds")));
    EXPECT_FALSE(std::isnan(JsonNumber(line, "rss_bytes")));
    EXPECT_NE(line.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(line.find("\"gauges\":{"), std::string::npos);
  }
  // The stream carries deltas: the 7 and the 4 land on different lines and
  // sum to the total across the run.
  double total = 0;
  for (const std::string& line : lines) {
    const double d = JsonNumber(line, "obs_sampler_test/work");
    if (!std::isnan(d)) total += d;
  }
  EXPECT_EQ(total, 11.0);
}

TEST(SamplerTest, StartStopLifecycle) {
  SamplerOptions options;
  options.interval_ms = 1;
  Sampler sampler(options);
  EXPECT_FALSE(sampler.running());
  std::string error;
  ASSERT_TRUE(sampler.Start(&error)) << error;
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.Start(&error));  // double-start refused
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.num_samples_taken(), 1u);  // at least the final sample
  sampler.Stop();  // idempotent
}

TEST(SamplerTest, UnopenableStreamFailsStart) {
  SamplerOptions options;
  options.stream_path = "/nonexistent-dir/metrics.jsonl";
  Sampler sampler(options);
  std::string error;
  EXPECT_FALSE(sampler.Start(&error));
  EXPECT_NE(error.find("metrics stream"), std::string::npos);
  EXPECT_FALSE(sampler.running());
}

}  // namespace
}  // namespace erminer::obs
