// Shared fixtures: small hand-checkable corpora used across test files,
// plus a process-wide cache of seeded generated datasets.

#ifndef ERMINER_TESTS_TEST_UTIL_H_
#define ERMINER_TESTS_TEST_UTIL_H_

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "data/corpus.h"
#include "data/schema_match.h"
#include "data/table.h"
#include "datagen/generators.h"

namespace erminer::testing {

/// Process-wide memo of seeded generated datasets, keyed by everything that
/// determines their content. Tests that need "the Adult instance with seed
/// 77" should go through here instead of calling MakeByName directly, so
/// repeated TESTs in one binary stop regenerating identical corpora (the
/// generators are deterministic, so sharing one instance is safe as long as
/// callers treat it as read-only — take a const ref, or BuildCorpus() a
/// fresh Corpus from it).
///
/// Scope note: ctest runs each gtest_discover_tests case as its own
/// process, so the cache only pays off within one test-binary invocation
/// (several TESTs sharing a fixture, or a direct `./some_test` run). That
/// is where the duplication actually was — differential tests that generate
/// the same instance once per method under comparison.
class SeededCorpusCache {
 public:
  static const GeneratedDataset& Get(const std::string& dataset,
                                     size_t input_size, size_t master_size,
                                     uint64_t seed, double noise = 0.1) {
    static auto* cache =
        new std::map<std::tuple<std::string, size_t, size_t, uint64_t,
                                double>,
                     GeneratedDataset>();
    auto key = std::make_tuple(dataset, input_size, master_size, seed, noise);
    auto it = cache->find(key);
    if (it == cache->end()) {
      GenOptions g;
      g.input_size = input_size;
      g.master_size = master_size;
      g.seed = seed;
      g.noise_rate = noise;
      it = cache->emplace(key, MakeByName(dataset, g).ValueOrDie()).first;
    }
    return it->second;
  }
};

/// Input (A, G, Y), master (A, Y), matched on A and Y.
///
/// master: (a1,y1) (a1,y1) (a1,y2) (a2,y2)
///   group a1 -> {y1:2, y2:1}; group a2 -> {y2:1}
/// input:
///   r0 (a1,g1,y1)  r1 (a1,g2,y2)  r2 (a2,g1,y2)  r3 (a3,g1,y1)
///   r4 (a1,g1,NULL)
///
/// Rule {(A,A)} with empty pattern: S=4 (r3 unmatched), C=0.75,
/// Q=(+1-1+1-1)/4=0. With pattern G=g1: S=3, C=7/9, Q=1/3.
inline Corpus MakeTinyCorpus() {
  StringTable input;
  input.schema = Schema::FromNames({"A", "G", "Y"});
  input.rows = {
      {"a1", "g1", "y1"}, {"a1", "g2", "y2"}, {"a2", "g1", "y2"},
      {"a3", "g1", "y1"}, {"a1", "g1", ""},
  };
  StringTable master;
  master.schema = Schema::FromNames({"A", "Y"});
  master.rows = {{"a1", "y1"}, {"a1", "y1"}, {"a1", "y2"}, {"a2", "y2"}};
  SchemaMatch match(3);
  match.AddPair(0, 0);  // A - A
  match.AddPair(2, 1);  // Y - Y
  return Corpus::Build(input, master, match, /*y_input=*/2, /*y_master=*/1)
      .ValueOrDie();
}

/// A corpus where Y is an exact function of (A, B) in master and the input
/// has some rows outside master coverage — EnuMiner must find the rule
/// {(A,A),(B,B)} with certainty 1.
inline Corpus MakeExactFdCorpus(size_t n_input = 200, size_t n_master = 60) {
  StringTable input;
  input.schema = Schema::FromNames({"A", "B", "N", "Y"});
  StringTable master;
  master.schema = Schema::FromNames({"A", "B", "Y"});
  auto y_of = [](size_t a, size_t b) {
    return "y" + std::to_string((a * 7 + b * 3) % 5);
  };
  for (size_t i = 0; i < n_master; ++i) {
    size_t a = i % 6, b = (i / 2) % 5;
    master.rows.push_back({"a" + std::to_string(a), "b" + std::to_string(b),
                           y_of(a, b)});
  }
  for (size_t i = 0; i < n_input; ++i) {
    size_t a = i % 6, b = (i / 3) % 5;
    input.rows.push_back({"a" + std::to_string(a), "b" + std::to_string(b),
                          "n" + std::to_string(i % 17), y_of(a, b)});
  }
  SchemaMatch match(4);
  match.AddPair(0, 0);
  match.AddPair(1, 1);
  match.AddPair(3, 2);
  return Corpus::Build(input, master, match, /*y_input=*/3, /*y_master=*/2)
      .ValueOrDie();
}

}  // namespace erminer::testing

#endif  // ERMINER_TESTS_TEST_UTIL_H_
