#include "datagen/generators.h"

#include <set>

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(SpecShapesTest, MatchTableOneSchemaWidths) {
  // Table I of the paper: (#A, #A_m) per dataset.
  EXPECT_EQ(AdultSpec().input_columns.size(), 10u);
  EXPECT_EQ(AdultSpec().master_columns.size(), 9u);
  EXPECT_EQ(CovidSpec().input_columns.size(), 7u);
  EXPECT_EQ(CovidSpec().master_columns.size(), 8u);
  EXPECT_EQ(NurserySpec().input_columns.size(), 9u);
  EXPECT_EQ(NurserySpec().master_columns.size(), 9u);
  EXPECT_EQ(LocationSpec().input_columns.size(), 9u);
  EXPECT_EQ(LocationSpec().master_columns.size(), 5u);
}

TEST(SpecShapesTest, DefaultSizesMatchTableOne) {
  EXPECT_EQ(AdultSpec().default_input_size, 40000u);
  EXPECT_EQ(AdultSpec().default_master_size, 5000u);
  EXPECT_EQ(CovidSpec().default_input_size, 2500u);
  EXPECT_EQ(CovidSpec().default_master_size, 1824u);
  EXPECT_EQ(NurserySpec().default_input_size, 10000u);
  EXPECT_EQ(NurserySpec().default_master_size, 2980u);
  EXPECT_EQ(LocationSpec().default_input_size, 2559u);
  EXPECT_EQ(LocationSpec().default_master_size, 3430u);
}

GenOptions SmallGen(uint64_t seed = 3) {
  GenOptions g;
  g.input_size = 300;
  g.master_size = 150;
  g.noise_rate = 0.1;
  g.seed = seed;
  return g;
}

TEST(GeneratorTest, SizesAndSchemasHonored) {
  GeneratedDataset ds = MakeCovid(SmallGen()).ValueOrDie();
  EXPECT_EQ(ds.input.num_rows(), 300u);
  EXPECT_EQ(ds.master.num_rows(), 150u);
  EXPECT_EQ(ds.input.num_cols(), 7u);
  EXPECT_EQ(ds.master.num_cols(), 8u);
  EXPECT_GE(ds.y_input, 0);
  EXPECT_GE(ds.y_master, 0);
  EXPECT_EQ(ds.input.schema.attribute(static_cast<size_t>(ds.y_input)).name,
            "infection_case");
}

TEST(GeneratorTest, CleanInputMatchesInputExceptDirtyCells) {
  GeneratedDataset ds = MakeNursery(SmallGen()).ValueOrDie();
  ASSERT_EQ(ds.clean_input.num_rows(), ds.input.num_rows());
  for (size_t r = 0; r < ds.input.num_rows(); ++r) {
    for (size_t c = 0; c < ds.input.num_cols(); ++c) {
      if (!ds.injection.dirty[c][r]) {
        EXPECT_EQ(ds.input.rows[r][c], ds.clean_input.rows[r][c]);
      }
    }
  }
}

TEST(GeneratorTest, MasterIsClean) {
  GeneratedDataset ds = MakeCovid(SmallGen()).ValueOrDie();
  for (const auto& row : ds.master.rows) {
    for (const auto& cell : row) EXPECT_FALSE(cell.empty());
  }
}

TEST(GeneratorTest, CovidMasterExcludesOverseas) {
  // The master filter keeps only domestically infected entities; the input
  // still contains both kinds.
  GeneratedDataset ds = MakeCovid(SmallGen()).ValueOrDie();
  int overseas_col = ds.input.schema.IndexOf("overseas");
  ASSERT_GE(overseas_col, 0);
  std::set<std::string> input_vals;
  for (const auto& row : ds.clean_input.rows) {
    input_vals.insert(row[static_cast<size_t>(overseas_col)]);
  }
  EXPECT_GT(input_vals.size(), 1u);
  EXPECT_EQ(ds.master.schema.IndexOf("overseas"), -1);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratedDataset a = MakeAdult(SmallGen(7)).ValueOrDie();
  GeneratedDataset b = MakeAdult(SmallGen(7)).ValueOrDie();
  EXPECT_EQ(a.input.rows, b.input.rows);
  EXPECT_EQ(a.master.rows, b.master.rows);
}

TEST(GeneratorTest, SeedsChangeData) {
  GeneratedDataset a = MakeAdult(SmallGen(7)).ValueOrDie();
  GeneratedDataset b = MakeAdult(SmallGen(8)).ValueOrDie();
  EXPECT_NE(a.input.rows, b.input.rows);
}

TEST(GeneratorTest, NoiseRateZeroKeepsInputClean) {
  GenOptions g = SmallGen();
  g.noise_rate = 0.0;
  GeneratedDataset ds = MakeLocation(g).ValueOrDie();
  EXPECT_EQ(ds.injection.num_errors, 0u);
  EXPECT_EQ(ds.input.rows, ds.clean_input.rows);
}

TEST(GeneratorTest, DuplicatePercentHundredDrawsFromMasterEntities) {
  GenOptions g = SmallGen();
  g.duplicate_percent = 100.0;
  g.noise_rate = 0.0;
  GeneratedDataset ds = MakeNursery(g).ValueOrDie();
  // Every clean input row must appear verbatim among master rows (Nursery's
  // input and master schemas are identical).
  std::set<std::vector<std::string>> master_rows(ds.master.rows.begin(),
                                                 ds.master.rows.end());
  for (const auto& row : ds.clean_input.rows) {
    EXPECT_TRUE(master_rows.count(row) > 0);
  }
}

TEST(GeneratorTest, MatchPairsCoverSharedNames) {
  GeneratedDataset ds = MakeCovid(SmallGen()).ValueOrDie();
  // city, confirmed_date, sex, age_group, infection_case, patient_id.
  EXPECT_EQ(ds.match.num_pairs(), 6u);
}

TEST(GeneratorTest, YTruthAndDirtyAlign) {
  GeneratedDataset ds = MakeCovid(SmallGen()).ValueOrDie();
  auto truth = ds.YTruth();
  auto dirty = ds.YDirty();
  ASSERT_EQ(truth.size(), ds.input.num_rows());
  ASSERT_EQ(dirty.size(), ds.input.num_rows());
  size_t y = static_cast<size_t>(ds.y_input);
  for (size_t r = 0; r < truth.size(); ++r) {
    if (!dirty[r]) EXPECT_EQ(ds.input.rows[r][y], truth[r]);
  }
}

TEST(GeneratorTest, MakeByNameDispatches) {
  EXPECT_TRUE(MakeByName("covid", SmallGen()).ok());
  EXPECT_TRUE(MakeByName("Adult", SmallGen()).ok());
  EXPECT_FALSE(MakeByName("unknown", SmallGen()).ok());
  EXPECT_EQ(DatasetNames().size(), 4u);
}

TEST(GeneratorTest, AdultHasBinnableContinuousAttributes) {
  DatasetSpec spec = AdultSpec();
  int age = spec.AttrIndex("age");
  ASSERT_GE(age, 0);
  EXPECT_EQ(spec.attributes[static_cast<size_t>(age)].kind,
            AttributeKind::kContinuous);
}

}  // namespace
}  // namespace erminer
