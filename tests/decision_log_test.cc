// Decision-log format coverage, ckpt_corrupt_test style: every event type
// round-trips bit-exactly through the encoder and the parser (in-memory and
// through the writer's file path), a file cut at *every* byte length parses
// to a valid prefix flagged `truncated` (never an error, never a wrong
// event), and a single flipped byte anywhere in the stream is always
// detected — as a CRC/framing error or as truncation — with the events
// decoded before the damage still bit-identical to the originals.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/decision_log.h"

namespace erminer {
namespace {

using obs::DecisionEvent;
using obs::DecisionEventType;
using obs::DecisionLog;
using obs::DecisionLogContents;
using obs::DecisionMiner;
using obs::PruneReason;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::string Header() {
  std::string h;
  PutU32(&h, obs::kDecisionLogMagic);
  PutU32(&h, obs::kDecisionLogVersion);
  return h;
}

/// One event of every type, every field of its type set to a non-default
/// value (negative actions, -1 codes, empty and multi-element keys) so a
/// lossy round trip cannot hide behind zeros.
std::vector<DecisionEvent> AllEventTypes() {
  std::vector<DecisionEvent> events;

  DecisionEvent expand;
  expand.type = DecisionEventType::kExpand;
  expand.miner = static_cast<uint8_t>(DecisionMiner::kEnu);
  expand.parent_key = {};  // root expansion: empty parent is a valid key
  expand.action = 7;
  expand.key = {7};
  events.push_back(expand);

  DecisionEvent prune;
  prune.type = DecisionEventType::kPrune;
  prune.miner = static_cast<uint8_t>(DecisionMiner::kCtane);
  prune.reason = static_cast<uint8_t>(PruneReason::kMasterSupport);
  prune.parent_key = {3, 11, 42};
  prune.action = -1;
  prune.measure = -2.5;
  events.push_back(prune);

  DecisionEvent emit;
  emit.type = DecisionEventType::kEmit;
  emit.miner = static_cast<uint8_t>(DecisionMiner::kRl);
  emit.rule_id = 0xDEADBEEFCAFEF00Dull;
  emit.key = {1, -2, 3};
  emit.support = 1234;
  emit.certainty = 0.875;
  emit.quality = -0.25;
  emit.utility = 98.5;
  emit.episode = 17;
  emit.step = 4;
  events.push_back(emit);

  DecisionEvent rl_step;
  rl_step.type = DecisionEventType::kRlStep;
  rl_step.flags = obs::kRlStepExplored | obs::kRlStepInference;
  rl_step.episode = 17;
  rl_step.step = 4;
  rl_step.key = {5, 9};
  rl_step.action = 9;
  rl_step.greedy_action = 2;
  rl_step.epsilon = 0.0625;
  rl_step.q_chosen = -1.5;
  rl_step.q_greedy = 3.25;
  rl_step.reward = 0.5;
  events.push_back(rl_step);

  DecisionEvent rl_train;
  rl_train.type = DecisionEventType::kRlTrain;
  rl_train.step = 900;
  rl_train.replay_size = 512;
  rl_train.loss = 0.015625;
  events.push_back(rl_train);

  DecisionEvent repair;
  repair.type = DecisionEventType::kRepair;
  repair.rule_id = 0x0123456789ABCDEFull;
  repair.row = 41;
  repair.master_row = -1;  // unresolved master tuple is representable
  repair.old_value = -1;   // NULL cell
  repair.new_value = 6;
  repair.measure = 2.75;
  events.push_back(repair);

  return events;
}

std::string EncodeFile(const std::vector<DecisionEvent>& events) {
  std::string data = Header();
  for (const DecisionEvent& e : events) data += obs::EncodeDecisionEvent(e);
  return data;
}

/// EXPECT_EQ on the doubles is deliberate: the format stores raw IEEE bits,
/// so the round trip must be bit-exact, not approximate.
void ExpectEventEq(const DecisionEvent& want, const DecisionEvent& got) {
  EXPECT_EQ(want.type, got.type);
  EXPECT_EQ(want.miner, got.miner);
  EXPECT_EQ(want.reason, got.reason);
  EXPECT_EQ(want.flags, got.flags);
  EXPECT_EQ(want.action, got.action);
  EXPECT_EQ(want.greedy_action, got.greedy_action);
  EXPECT_EQ(want.rule_id, got.rule_id);
  EXPECT_EQ(want.episode, got.episode);
  EXPECT_EQ(want.step, got.step);
  EXPECT_EQ(want.row, got.row);
  EXPECT_EQ(want.master_row, got.master_row);
  EXPECT_EQ(want.old_value, got.old_value);
  EXPECT_EQ(want.new_value, got.new_value);
  EXPECT_EQ(want.support, got.support);
  EXPECT_EQ(want.certainty, got.certainty);
  EXPECT_EQ(want.quality, got.quality);
  EXPECT_EQ(want.utility, got.utility);
  EXPECT_EQ(want.measure, got.measure);
  EXPECT_EQ(want.epsilon, got.epsilon);
  EXPECT_EQ(want.q_chosen, got.q_chosen);
  EXPECT_EQ(want.q_greedy, got.q_greedy);
  EXPECT_EQ(want.reward, got.reward);
  EXPECT_EQ(want.loss, got.loss);
  EXPECT_EQ(want.replay_size, got.replay_size);
  EXPECT_EQ(want.key, got.key);
  EXPECT_EQ(want.parent_key, got.parent_key);
}

TEST(DecisionLogTest, RoundTripEveryEventType) {
  const std::vector<DecisionEvent> events = AllEventTypes();
  DecisionLogContents parsed = obs::ParseDecisionLog(EncodeFile(events));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_FALSE(parsed.truncated);
  EXPECT_EQ(parsed.version, obs::kDecisionLogVersion);
  ASSERT_EQ(parsed.events.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    ExpectEventEq(events[i], parsed.events[i]);
  }
}

TEST(DecisionLogTest, WriterRoundTripThroughFile) {
  const std::string path =
      ::testing::TempDir() + "/erminer_decision_log_test.dlog";
  std::remove(path.c_str());

  DecisionLog& log = DecisionLog::Global();
  ASSERT_FALSE(DecisionLog::Armed());
  std::string error;
  ASSERT_TRUE(log.Open(path, &error)) << error;
  EXPECT_TRUE(DecisionLog::Armed());
  EXPECT_EQ(log.path(), path);

  // A second Open while armed must refuse rather than clobber the file.
  EXPECT_FALSE(log.Open(path, &error));
  EXPECT_FALSE(error.empty());

  log.Expand(DecisionMiner::kEnu, {}, 7, {7});
  log.Prune(DecisionMiner::kEnu, PruneReason::kSupport, {7}, 3, 8.0);
  log.Emit(DecisionMiner::kBeam, 0xABCDull, {7, 9}, 42, 1.0, 0.5, 21.0);
  log.RlStep(obs::kRlStepExplored, 2, 5, {1, 4}, 4, 1, 0.25, 1.5, 2.5, -1.0);
  log.RlTrain(100, 64, 0.125);
  log.Repair(0xABCDull, 3, 12, -1, 5, 2.0);

  const std::string summary = log.SummaryJson(8);
  EXPECT_NE(summary.find("\"armed\":true"), std::string::npos) << summary;
  EXPECT_NE(summary.find("\"emit\":1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("\"prune\":1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("\"dropped\":0"), std::string::npos) << summary;
  EXPECT_NE(summary.find("\"support\":1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("000000000000abcd"), std::string::npos) << summary;

  log.Close();
  EXPECT_FALSE(DecisionLog::Armed());

  DecisionLogContents parsed = obs::ReadDecisionLogFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_FALSE(parsed.truncated);
  ASSERT_EQ(parsed.events.size(), 6u);
  EXPECT_EQ(parsed.events[0].type, DecisionEventType::kExpand);
  EXPECT_EQ(parsed.events[0].key, std::vector<int32_t>({7}));
  EXPECT_EQ(parsed.events[1].type, DecisionEventType::kPrune);
  EXPECT_EQ(parsed.events[1].measure, 8.0);
  EXPECT_EQ(parsed.events[2].type, DecisionEventType::kEmit);
  EXPECT_EQ(parsed.events[2].rule_id, 0xABCDull);
  EXPECT_EQ(parsed.events[2].support, 42);
  EXPECT_EQ(parsed.events[3].type, DecisionEventType::kRlStep);
  EXPECT_EQ(parsed.events[3].greedy_action, 1);
  EXPECT_EQ(parsed.events[4].type, DecisionEventType::kRlTrain);
  EXPECT_EQ(parsed.events[4].replay_size, 64u);
  EXPECT_EQ(parsed.events[5].type, DecisionEventType::kRepair);
  EXPECT_EQ(parsed.events[5].master_row, 12);
  std::remove(path.c_str());
}

TEST(DecisionLogTest, OpenFailsOnUnwritablePath) {
  DecisionLog& log = DecisionLog::Global();
  std::string error;
  EXPECT_FALSE(
      log.Open("/nonexistent_dir_erminer/decision.dlog", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(DecisionLog::Armed());
}

TEST(DecisionLogTest, TruncationAtEveryLength) {
  const std::vector<DecisionEvent> events = AllEventTypes();
  const std::string full = EncodeFile(events);

  // Byte offsets at which the file ends on a record boundary.
  std::vector<size_t> boundaries = {8};
  for (const DecisionEvent& e : events) {
    boundaries.push_back(boundaries.back() +
                         obs::EncodeDecisionEvent(e).size());
  }

  for (size_t n = 0; n <= full.size(); ++n) {
    SCOPED_TRACE("prefix length " + std::to_string(n));
    DecisionLogContents parsed =
        obs::ParseDecisionLog(std::string_view(full.data(), n));
    if (n < 8) {
      // No complete header: not recognizable as a decision log at all.
      EXPECT_FALSE(parsed.ok());
      continue;
    }
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    size_t complete = 0;
    bool at_boundary = false;
    for (size_t b = 0; b < boundaries.size(); ++b) {
      if (boundaries[b] <= n) complete = b;
      if (boundaries[b] == n) at_boundary = true;
    }
    EXPECT_EQ(parsed.truncated, !at_boundary);
    ASSERT_EQ(parsed.events.size(), complete);
    for (size_t i = 0; i < complete; ++i) {
      ExpectEventEq(events[i], parsed.events[i]);
    }
  }
}

TEST(DecisionLogTest, ByteFlipAnywhereIsDetected) {
  const std::vector<DecisionEvent> events = AllEventTypes();
  const std::string full = EncodeFile(events);
  DecisionLogContents clean = obs::ParseDecisionLog(full);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE(clean.truncated);

  for (size_t i = 0; i < full.size(); ++i) {
    SCOPED_TRACE("flipped byte " + std::to_string(i));
    std::string damaged = full;
    damaged[i] = static_cast<char>(damaged[i] ^ 0xFF);
    DecisionLogContents parsed = obs::ParseDecisionLog(damaged);
    // The flip must never go unnoticed: either the record CRC (or framing)
    // rejects it, or a corrupted length field reads as truncation. A clean
    // full-length parse would mean a silently wrong event.
    EXPECT_TRUE(!parsed.ok() || parsed.truncated);
    // Whatever decoded before the damage is still exactly the original
    // prefix — corruption never rewrites an earlier event.
    ASSERT_LE(parsed.events.size(), events.size());
    for (size_t k = 0; k < parsed.events.size(); ++k) {
      ExpectEventEq(events[k], parsed.events[k]);
    }
  }
}

}  // namespace
}  // namespace erminer
