#include "core/rule_set.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

EditingRule Rule(LhsPairs lhs, std::vector<PatternItem> items = {}) {
  EditingRule r;
  r.lhs = std::move(lhs);
  r.y_input = 9;
  r.y_master = 9;
  for (auto& it : items) r.pattern.Add(std::move(it));
  return r;
}

ScoredRule Scored(EditingRule r, double utility, long support = 100) {
  ScoredRule s;
  s.rule = std::move(r);
  s.stats.support = support;
  s.stats.utility = utility;
  return s;
}

TEST(SelectTopKTest, OrdersByUtility) {
  auto out = SelectTopKNonRedundant(
      {Scored(Rule({{0, 0}}), 1.0), Scored(Rule({{1, 1}}), 5.0),
       Scored(Rule({{2, 2}}), 3.0)},
      3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].stats.utility, 5.0);
  EXPECT_EQ(out[1].stats.utility, 3.0);
  EXPECT_EQ(out[2].stats.utility, 1.0);
}

TEST(SelectTopKTest, RespectsK) {
  auto out = SelectTopKNonRedundant(
      {Scored(Rule({{0, 0}}), 1.0), Scored(Rule({{1, 1}}), 2.0)}, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].stats.utility, 2.0);
}

TEST(SelectTopKTest, DropsDominatedRules) {
  // general dominates specific; higher-utility one is kept regardless of
  // which direction the domination goes.
  auto out = SelectTopKNonRedundant(
      {Scored(Rule({{0, 0}}), 1.0), Scored(Rule({{0, 0}, {1, 1}}), 5.0)}, 5);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule.LhsSize(), 2u);
  EXPECT_TRUE(IsNonRedundant(out));
}

TEST(SelectTopKTest, DropsExactDuplicates) {
  auto out = SelectTopKNonRedundant(
      {Scored(Rule({{0, 0}}), 2.0), Scored(Rule({{0, 0}}), 2.0)}, 5);
  EXPECT_EQ(out.size(), 1u);
}

TEST(SelectTopKTest, KeepsIncomparableRules) {
  auto out = SelectTopKNonRedundant(
      {Scored(Rule({{0, 0}}), 2.0), Scored(Rule({{1, 1}}), 1.0)}, 5);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(IsNonRedundant(out));
}

TEST(SelectTopKTest, PatternDominationCounts) {
  PatternItem p{2, {7}, "v"};
  auto out = SelectTopKNonRedundant(
      {Scored(Rule({{0, 0}}), 3.0), Scored(Rule({{0, 0}}, {p}), 1.0)}, 5);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule.PatternSize(), 0u);
}

TEST(IsNonRedundantTest, DetectsViolation) {
  std::vector<ScoredRule> rules = {Scored(Rule({{0, 0}}), 1.0),
                                   Scored(Rule({{0, 0}, {1, 1}}), 2.0)};
  EXPECT_FALSE(IsNonRedundant(rules));
  EXPECT_TRUE(IsNonRedundant({rules[0]}));
  EXPECT_TRUE(IsNonRedundant({}));
}

TEST(LengthStatsTest, ComputesMoments) {
  PatternItem p{2, {7}, "v"};
  std::vector<ScoredRule> rules = {
      Scored(Rule({{0, 0}}), 1.0),                    // lhs 1, pattern 0
      Scored(Rule({{0, 0}, {1, 1}}, {p}), 2.0),       // lhs 2, pattern 1
  };
  RuleLengthStats s = ComputeLengthStats(rules);
  EXPECT_DOUBLE_EQ(s.lhs_mean, 1.5);
  EXPECT_DOUBLE_EQ(s.lhs_std, 0.5);
  EXPECT_EQ(s.lhs_max, 2u);
  EXPECT_EQ(s.lhs_min, 1u);
  EXPECT_DOUBLE_EQ(s.pattern_mean, 0.5);
  EXPECT_EQ(s.pattern_max, 1u);
  EXPECT_EQ(s.pattern_min, 0u);
}

TEST(LengthStatsTest, EmptyRulesGiveZeros) {
  RuleLengthStats s = ComputeLengthStats({});
  EXPECT_EQ(s.lhs_mean, 0.0);
  EXPECT_EQ(s.lhs_max, 0u);
}

}  // namespace
}  // namespace erminer
