// Run-manifest tests: directory layout, config.json contents, one
// episodes.jsonl line per episode (via the TrainingLog publishing path),
// per-line durability (lines visible before the manifest closes, the way a
// killed run would leave them) and summary.json marking clean completion.

#include "obs/run_manifest.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rl/training_log.h"

namespace erminer::obs {
namespace {

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::remove((dir + "/config.json").c_str());
  std::remove((dir + "/episodes.jsonl").c_str());
  std::remove((dir + "/summary.json").c_str());
  ::rmdir(dir.c_str());
  return dir;
}

TEST(RunManifestTest, OpenCreatesLayoutAndConfig) {
  const std::string dir = FreshDir("erminer_manifest_layout/nested");
  std::string error;
  auto manifest = RunManifest::Open(
      dir, {{"seed", "17"}, {"method", "rl"}, {"command", "mine"}}, &error);
  ASSERT_NE(manifest, nullptr) << error;
  EXPECT_EQ(manifest->dir(), dir);
  ASSERT_TRUE(FileExists(dir + "/config.json"));
  ASSERT_TRUE(FileExists(dir + "/episodes.jsonl"));
  EXPECT_FALSE(FileExists(dir + "/summary.json"));
  const std::string config = ReadFile(dir + "/config.json");
  EXPECT_NE(config.find("\"git_describe\":"), std::string::npos);
  EXPECT_NE(config.find("\"created_unix_ms\":"), std::string::npos);
  EXPECT_NE(config.find("\"seed\":\"17\""), std::string::npos);
  EXPECT_NE(config.find("\"method\":\"rl\""), std::string::npos);
  EXPECT_NE(config.find("\"command\":\"mine\""), std::string::npos);
  EXPECT_EQ(manifest->episodes_appended(), 0u);
  EXPECT_TRUE(ReadLines(dir + "/episodes.jsonl").empty());
}

TEST(RunManifestTest, OneLinePerEpisodeAndSummaryOnCompletion) {
  const std::string dir = FreshDir("erminer_manifest_episodes");
  std::string error;
  auto manifest = RunManifest::Open(dir, {}, &error);
  ASSERT_NE(manifest, nullptr) << error;
  for (int i = 0; i < 5; ++i) {
    manifest->AppendEpisode("{\"episode\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(manifest->episodes_appended(), 5u);
  // Per-line flush: every appended line is already on disk, exactly what a
  // SIGKILL at this point would leave behind.
  std::vector<std::string> lines = ReadLines(dir + "/episodes.jsonl");
  ASSERT_EQ(lines.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lines[static_cast<size_t>(i)],
              "{\"episode\":" + std::to_string(i) + "}");
  }
  EXPECT_TRUE(manifest->WriteSummary("{\"ok\":true,\"episodes\":5}"));
  EXPECT_EQ(ReadFile(dir + "/summary.json"),
            "{\"ok\":true,\"episodes\":5}\n");
}

TEST(RunManifestTest, InterruptedRunLeavesPartialStreamNoSummary) {
  const std::string dir = FreshDir("erminer_manifest_partial");
  std::string error;
  {
    auto manifest = RunManifest::Open(dir, {{"seed", "3"}}, &error);
    ASSERT_NE(manifest, nullptr) << error;
    manifest->AppendEpisode("{\"episode\":0}");
    manifest->AppendEpisode("{\"episode\":1}");
    // Destroyed without WriteSummary — the "interrupted" path.
  }
  EXPECT_TRUE(FileExists(dir + "/config.json"));
  EXPECT_EQ(ReadLines(dir + "/episodes.jsonl").size(), 2u);
  EXPECT_FALSE(FileExists(dir + "/summary.json"));
}

TEST(RunManifestTest, TrainingLogPublishesThroughActiveManifest) {
  const std::string dir = FreshDir("erminer_manifest_traininglog");
  std::string error;
  auto manifest = RunManifest::Open(dir, {}, &error);
  ASSERT_NE(manifest, nullptr) << error;
  SetActiveRunManifest(manifest.get());
  ASSERT_EQ(ActiveRunManifest(), manifest.get());

  TrainingLog log;
  for (int e = 0; e < 3; ++e) {
    log.BeginEpisode();
    log.RecordStep(/*reward=*/1.0, /*loss=*/0.25);
    log.RecordStep(/*reward=*/-0.5, /*loss=*/0.5);
    log.EndEpisode(/*leaves=*/static_cast<size_t>(e));
  }
  SetActiveRunManifest(nullptr);

  std::vector<std::string> lines = ReadLines(dir + "/episodes.jsonl");
  ASSERT_EQ(lines.size(), log.episodes().size());
  ASSERT_EQ(lines.size(), 3u);
  for (size_t e = 0; e < lines.size(); ++e) {
    EXPECT_EQ(lines[e], TrainingLog::EpisodeJson(log.episodes()[e]));
    EXPECT_NE(lines[e].find("\"episode\":" + std::to_string(e)),
              std::string::npos);
    EXPECT_NE(lines[e].find("\"steps\":2"), std::string::npos);
  }
  // With no active manifest, EndEpisode publishes nowhere (no crash, no
  // extra lines).
  log.BeginEpisode();
  log.RecordStep(1.0, 0.0);
  log.EndEpisode(0);
  EXPECT_EQ(ReadLines(dir + "/episodes.jsonl").size(), 3u);
}

TEST(RunManifestTest, UnwritableDirFailsOpen) {
  std::string error;
  auto manifest = RunManifest::Open("/proc/definitely-not-writable", {},
                                    &error);
  EXPECT_EQ(manifest, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(GitDescribeTest, NeverEmpty) {
  ASSERT_NE(GitDescribe(), nullptr);
  EXPECT_NE(std::string(GitDescribe()), "");
}

}  // namespace
}  // namespace erminer::obs
