// End-to-end integration: generated datasets -> corpus -> all four miners
// -> repair -> metrics, including the cross-method relationships the paper
// reports (CTANE's low recall; EnuMiner/RLMiner parity).

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/table.h"

namespace erminer {
namespace {

GenOptions SmallGen(uint64_t seed = 31) {
  GenOptions g;
  g.input_size = 800;
  g.master_size = 600;
  g.noise_rate = 0.1;
  g.seed = seed;
  return g;
}

MinerOptions Opts(const GeneratedDataset& ds) {
  MinerOptions o = DefaultMinerOptions(ds, /*k=*/20);
  o.support_threshold = 30;
  return o;
}

RlMinerOptions RlOpts(const GeneratedDataset& ds) {
  RlMinerOptions o = DefaultRlOptions(ds, /*k=*/20);
  o.base.support_threshold = 30;
  o.train_steps = 1200;
  o.dqn.hidden = {64, 64};
  return o;
}

TEST(IntegrationTest, AllMethodsRunOnCovid) {
  GeneratedDataset ds = MakeCovid(SmallGen()).ValueOrDie();
  for (Method m : {Method::kCtane, Method::kEnuMiner, Method::kEnuMinerH3,
                   Method::kRlMiner}) {
    TrialResult r = RunTrial(ds, m, Opts(ds), RlOpts(ds)).ValueOrDie();
    EXPECT_TRUE(IsNonRedundant(r.mine.rules)) << MethodName(m);
    EXPECT_GE(r.repair.precision, 0.0) << MethodName(m);
    EXPECT_LE(r.repair.precision, 1.0) << MethodName(m);
  }
}

TEST(IntegrationTest, EnuMinerBeatsCtaneOnRecall) {
  // CTANE cannot condition on the input-only gate attribute, so it repairs
  // fewer tuples correctly (Table III's pattern).
  GeneratedDataset ds = MakeCovid(SmallGen(7)).ValueOrDie();
  TrialResult ctane =
      RunTrial(ds, Method::kCtane, Opts(ds), RlOpts(ds)).ValueOrDie();
  TrialResult enu =
      RunTrial(ds, Method::kEnuMiner, Opts(ds), RlOpts(ds)).ValueOrDie();
  EXPECT_GT(enu.repair.recall, ctane.repair.recall);
  EXPECT_GT(enu.repair.f1, ctane.repair.f1);
}

TEST(IntegrationTest, RlMinerTracksEnuMinerF1) {
  GeneratedDataset ds = MakeCovid(SmallGen(13)).ValueOrDie();
  TrialResult enu =
      RunTrial(ds, Method::kEnuMiner, Opts(ds), RlOpts(ds)).ValueOrDie();
  TrialResult rl =
      RunTrial(ds, Method::kRlMiner, Opts(ds), RlOpts(ds)).ValueOrDie();
  // Approximate parity (Sec. V-B2): RLMiner within 0.15 F1 of EnuMiner.
  EXPECT_GT(rl.repair.f1, enu.repair.f1 - 0.15);
}

TEST(IntegrationTest, H3MatchesEnuMinerCloselyAndExploresLess) {
  GeneratedDataset ds = MakeNursery(SmallGen(17)).ValueOrDie();
  TrialResult enu =
      RunTrial(ds, Method::kEnuMiner, Opts(ds), RlOpts(ds)).ValueOrDie();
  TrialResult h3 =
      RunTrial(ds, Method::kEnuMinerH3, Opts(ds), RlOpts(ds)).ValueOrDie();
  EXPECT_LE(h3.mine.nodes_explored, enu.mine.nodes_explored);
  EXPECT_NEAR(h3.repair.f1, enu.repair.f1, 0.1);
}

TEST(IntegrationTest, ZeroNoiseStillRepairsSomething) {
  // Fig. 6's noise-0 observation: predictions still flow (and mostly agree
  // with the clean input).
  GenOptions g = SmallGen(19);
  g.noise_rate = 0.0;
  GeneratedDataset ds = MakeCovid(g).ValueOrDie();
  TrialResult r =
      RunTrial(ds, Method::kEnuMiner, Opts(ds), RlOpts(ds)).ValueOrDie();
  EXPECT_GT(r.repair.num_predicted, 0u);
  EXPECT_GT(r.repair.precision, 0.5);
}

TEST(IntegrationTest, LengthStatsAreReasonable) {
  GeneratedDataset ds = MakeCovid(SmallGen(23)).ValueOrDie();
  TrialResult r =
      RunTrial(ds, Method::kEnuMiner, Opts(ds), RlOpts(ds)).ValueOrDie();
  ASSERT_FALSE(r.mine.rules.empty());
  EXPECT_GE(r.lengths.lhs_min, 1u);
  EXPECT_LE(r.lengths.lhs_max, 6u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.AddRow({"xxxxx", "1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| a     | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| xxxxx | 1           |"), std::string::npos);
}

TEST(AggregateTest, MeanAndStd) {
  Aggregate a = Aggregate_({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_NEAR(a.stdev, 1.118, 1e-3);
  EXPECT_EQ(MeanStd(a), "2.50 +- 1.12");
  Aggregate empty = Aggregate_({});
  EXPECT_EQ(empty.mean, 0.0);
}

}  // namespace
}  // namespace erminer
