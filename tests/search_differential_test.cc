// Pinned-golden differential tests for the unified search engine: every
// miner's rule file (RulesToText) and decision log must stay byte-identical
// to goldens captured from the pre-refactor miners, across threads {1,2,4}
// x refine {on,off}. Decision events are recorded only from the mining
// thread, so one golden per miner covers the whole matrix.
//
// Regenerating goldens (only when an *intentional* behavior change lands):
//   ERMINER_WRITE_SEARCH_GOLDENS=1 ./search_differential_test
// writes fresh goldens into tests/testdata/search/ instead of comparing.
//
// On top of byte-identity, the tests assert the MineResult counter
// semantics documented in core/miner.h: nodes_explored equals the number
// of kExpand events the decision log recorded, and rule_evaluations equals
// the evaluator's query count (== nodes_explored for the lattice miners
// that evaluate every admitted candidate exactly once; == emit count for
// CTANE, which evaluates only converted rules).

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/beam_miner.h"
#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "core/rule_io.h"
#include "eval/experiment.h"
#include "obs/decision_log.h"
#include "rl/rl_miner.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;
using erminer::testing::SeededCorpusCache;

std::string GoldenDir() {
  return std::string(ERMINER_TEST_SRCDIR) + "/testdata/search";
}

bool WriterMode() {
  return ::getenv("ERMINER_WRITE_SEARCH_GOLDENS") != nullptr;
}

std::string TempLogPath(const std::string& tag) {
  return ::testing::TempDir() + "/erminer_search_diff_" + tag + "_" +
         std::to_string(::getpid()) + ".dlog";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.good()) << "cannot write " << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << "short write to " << path;
}

struct RunOutput {
  MineResult result;
  std::string rules_text;  // RulesToText over result.rules
  std::string log_bytes;   // the raw armed decision-log file
};

/// One armed mining run at a given thread count. The corpus is built inside
/// the run (under the same thread count), exactly like a real invocation.
RunOutput RunArmed(long threads,
                   const std::function<Corpus()>& make_corpus,
                   const std::function<MineResult(const Corpus&)>& mine,
                   const std::string& tag) {
  const std::string log_path = TempLogPath(tag);
  std::string error;
  EXPECT_TRUE(obs::DecisionLog::Global().Open(log_path, &error)) << error;
  SetGlobalThreads(threads);
  Corpus corpus = make_corpus();
  RunOutput out;
  out.result = mine(corpus);
  out.rules_text = RulesToText(out.result.rules, corpus);
  SetGlobalThreads(1);
  obs::DecisionLog::Global().Close();
  out.log_bytes = ReadFileBytes(log_path);
  std::remove(log_path.c_str());
  return out;
}

/// Counter-semantics contract (core/miner.h): one kExpand event per
/// admitted/opened node, so nodes_explored == expand-event count always.
/// `evals_equal_expands` additionally pins rule_evaluations ==
/// nodes_explored (lattice miners); `evals_equal_emits` pins
/// rule_evaluations == emit-event count (CTANE). RLMiner pins neither:
/// its reward memoization makes evaluations a strict subset of steps.
void VerifyCounterSemantics(const RunOutput& out, bool evals_equal_expands,
                            bool evals_equal_emits) {
  obs::DecisionLogContents log = obs::ParseDecisionLog(out.log_bytes);
  ASSERT_TRUE(log.ok()) << log.error;
  ASSERT_FALSE(log.truncated);
  size_t expands = 0, emits = 0;
  for (const obs::DecisionEvent& e : log.events) {
    if (e.type == obs::DecisionEventType::kExpand) ++expands;
    if (e.type == obs::DecisionEventType::kEmit) ++emits;
  }
  EXPECT_EQ(out.result.nodes_explored, expands);
  if (evals_equal_expands) {
    EXPECT_EQ(out.result.rule_evaluations, expands);
  }
  if (evals_equal_emits) {
    EXPECT_EQ(out.result.rule_evaluations, emits);
  }
}

/// Writer mode: capture the golden at threads=1 with refine on. Compare
/// mode: every {threads} x {refine} cell must reproduce the golden bytes.
void RunGoldenMatrix(const std::string& tag,
                     const std::function<Corpus()>& make_corpus,
                     const std::function<MineResult(const Corpus&, bool)>&
                         mine_with_refine,
                     bool evals_equal_expands, bool evals_equal_emits) {
  const std::string rules_golden = GoldenDir() + "/" + tag + ".rules.txt";
  const std::string log_golden = GoldenDir() + "/" + tag + ".dlog";

  if (WriterMode()) {
    std::filesystem::create_directories(GoldenDir());
    RunOutput out = RunArmed(
        1, make_corpus,
        [&](const Corpus& c) { return mine_with_refine(c, true); }, tag);
    ASSERT_FALSE(out.result.rules.empty());
    WriteFileBytes(rules_golden, out.rules_text);
    WriteFileBytes(log_golden, out.log_bytes);
    return;
  }

  const std::string want_rules = ReadFileBytes(rules_golden);
  const std::string want_log = ReadFileBytes(log_golden);
  ASSERT_FALSE(want_rules.empty())
      << "missing golden " << rules_golden
      << " — regenerate with ERMINER_WRITE_SEARCH_GOLDENS=1";
  for (long threads : {1L, 2L, 4L}) {
    for (bool refine : {true, false}) {
      SCOPED_TRACE(tag + " threads=" + std::to_string(threads) +
                   " refine=" + (refine ? "on" : "off"));
      RunOutput out = RunArmed(
          threads, make_corpus,
          [&](const Corpus& c) { return mine_with_refine(c, refine); },
          tag + "_t" + std::to_string(threads) + (refine ? "_r1" : "_r0"));
      EXPECT_EQ(out.rules_text, want_rules);
      EXPECT_EQ(out.log_bytes, want_log);
      VerifyCounterSemantics(out, evals_equal_expands, evals_equal_emits);
    }
  }
}

MinerOptions SmallOptions(bool refine) {
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 12;
  o.refine = refine;
  return o;
}

std::function<Corpus()> CovidCorpus() {
  return [] {
    const GeneratedDataset& ds =
        SeededCorpusCache::Get("covid", 250, 200, 77);
    return BuildCorpus(ds).ValueOrDie();
  };
}

TEST(SearchDifferentialTest, EnuMinerH3) {
  RunGoldenMatrix(
      "enu", CovidCorpus(),
      [](const Corpus& c, bool refine) {
        return EnuMineH3(c, SmallOptions(refine));
      },
      /*evals_equal_expands=*/true, /*evals_equal_emits=*/false);
}

TEST(SearchDifferentialTest, BeamMiner) {
  RunGoldenMatrix(
      "beam", CovidCorpus(),
      [](const Corpus& c, bool refine) {
        return BeamMine(c, SmallOptions(refine));
      },
      /*evals_equal_expands=*/true, /*evals_equal_emits=*/false);
}

TEST(SearchDifferentialTest, Ctane) {
  RunGoldenMatrix(
      "ctane", CovidCorpus(),
      [](const Corpus& c, bool refine) {
        return CfdMine(c, SmallOptions(refine));
      },
      /*evals_equal_expands=*/false, /*evals_equal_emits=*/true);
}

TEST(SearchDifferentialTest, RlMinerInference) {
  RunGoldenMatrix(
      "rl_infer", CovidCorpus(),
      [](const Corpus& c, bool refine) {
        RlMinerOptions rl;
        rl.base = SmallOptions(refine);
        rl.seed = 123;
        rl.max_inference_steps = 200;
        RlMiner miner(&c, rl);
        return miner.Infer();
      },
      /*evals_equal_expands=*/false, /*evals_equal_emits=*/false);
}

TEST(SearchDifferentialTest, RlMinerTraining) {
  // The full Train() + Infer() trajectory: epsilon draws, replay, DQN
  // updates and the greedy walk must all reproduce the golden bit-for-bit.
  RunGoldenMatrix(
      "rl_train",
      [] { return MakeExactFdCorpus(); },
      [](const Corpus& c, bool refine) {
        RlMinerOptions o;
        o.base.k = 8;
        o.base.support_threshold = 20;
        o.base.refine = refine;
        o.train_steps = 300;
        o.seed = 21;
        o.dqn.hidden = {32, 32};
        RlMiner miner(&c, o);
        return miner.Mine();
      },
      /*evals_equal_expands=*/false, /*evals_equal_emits=*/false);
}

}  // namespace
}  // namespace erminer
