#include "core/repair.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

ScoredRule TinyScored(const Corpus& c, bool with_pattern) {
  EditingRule r;
  r.y_input = 2;
  r.y_master = 1;
  r.AddLhs(0, 0);
  if (with_pattern) {
    r.pattern.Add({1, {c.input().domain(1)->Lookup("g1")}, "g1"});
  }
  RuleEvaluator ev(&c);
  return {r, ev.Evaluate(r)};
}

TEST(RepairTest, SingleRulePredictsGroupArgmax) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RepairOutcome out = ApplyRules(&ev, {TinyScored(c, false)});
  Domain* dy = c.y_domain().get();
  // Rows with A=a1 get y1 (master majority), A=a2 gets y2, a3 nothing.
  EXPECT_EQ(out.prediction[0], dy->Lookup("y1"));
  EXPECT_EQ(out.prediction[1], dy->Lookup("y1"));
  EXPECT_EQ(out.prediction[2], dy->Lookup("y2"));
  EXPECT_EQ(out.prediction[3], kNullCode);
  EXPECT_EQ(out.prediction[4], dy->Lookup("y1"));  // null cell repaired
  EXPECT_EQ(out.num_predictions, 4u);
  EXPECT_NEAR(out.score[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(out.score[2], 1.0, 1e-12);
  EXPECT_EQ(out.score[3], 0.0);
}

TEST(RepairTest, PatternRuleOnlyCoversMatchingRows) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RepairOutcome out = ApplyRules(&ev, {TinyScored(c, true)});
  EXPECT_NE(out.prediction[0], kNullCode);  // g1
  EXPECT_EQ(out.prediction[1], kNullCode);  // g2 not covered
  EXPECT_NE(out.prediction[2], kNullCode);
  EXPECT_EQ(out.num_predictions, 3u);
}

TEST(RepairTest, ScoresAccumulateAcrossRules) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RepairOutcome one = ApplyRules(&ev, {TinyScored(c, false)});
  RepairOutcome two =
      ApplyRules(&ev, {TinyScored(c, false), TinyScored(c, true)});
  // Row 0 is covered by both rules: its winning score doubles.
  EXPECT_NEAR(two.score[0], 2 * one.score[0], 1e-12);
  EXPECT_EQ(two.prediction[0], one.prediction[0]);
  // Row 1 only by the first rule.
  EXPECT_NEAR(two.score[1], one.score[1], 1e-12);
}

TEST(RepairTest, EmptyRuleSetPredictsNothing) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RepairOutcome out = ApplyRules(&ev, {});
  EXPECT_EQ(out.num_predictions, 0u);
  for (ValueCode v : out.prediction) EXPECT_EQ(v, kNullCode);
}

}  // namespace
}  // namespace erminer
