// Crash-resume differential harness: for every compiled-in fault point and
// every thread count, fork a child, kill it mid-training with SIGKILL at
// that exact point, resume from `--resume=latest` in a fresh process, and
// require the final artifacts — rules with exact float bits, training log,
// counters, network Q-values — to be byte-identical to a never-interrupted
// run. Also proves the atomicity contract: after any kill, every non-.tmp
// file in the checkpoint directory is loadable.
//
// The gtest parent stays single-threaded (it never touches the global
// pool); each child configures its own thread count after fork, so the
// harness is fork-safe under TSan too.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/snapshot.h"
#include "obs/fault.h"
#include "obs/flush.h"
#include "obs/run_manifest.h"
#include "rl/rl_miner.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;

RlMinerOptions CrashRl() {
  RlMinerOptions o;
  o.base.k = 8;
  o.base.support_threshold = 20;
  o.train_steps = 150;
  o.seed = 29;
  o.dqn.hidden = {8};
  o.dqn.min_replay = 16;
  o.dqn.batch_size = 8;
  o.dqn.target_sync_every = 10;
  return o;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// What one training run leaves behind, as a byte-comparable text blob.
void WriteArtifacts(RlMiner* miner, const MineResult& result,
                    const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (const auto& sr : result.rules) {
    char stats[160];
    std::snprintf(stats, sizeof stats, " S=%ld C=%a Q=%a U=%a\n",
                  sr.stats.support, sr.stats.certainty, sr.stats.quality,
                  sr.stats.utility);  // %a: exact bits, no rounding
    out << sr.rule.ToString(corpus) << stats;
  }
  out << miner->training_log().ToCsv();
  out << "steps=" << miner->steps_done()
      << " episodes=" << miner->episodes_done()
      << " nodes=" << result.nodes_explored << "\n";
  // rule_evaluations is deliberately NOT an artifact: the resumed process
  // lost its memoization caches, so the *count* of evaluations differs even
  // though every evaluated value is identical.
  std::vector<float> q = miner->agent().QValues(RuleKey{});
  for (float v : q) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "q=%a\n", static_cast<double>(v));
    out << buf;
  }
  out.close();
  if (!out.good()) ::_exit(4);
}

struct ChildPlan {
  long threads = 1;
  std::string ckpt_dir;
  std::string manifest_dir;
  std::string artifact_path;
  std::string fault;  // empty = run to completion
  uint64_t fault_nth = 0;
  bool resume = false;
};

/// Child body; never returns. Exit codes: 0 ok, 3 resume failed, 4 I/O.
/// Armed children die by SIGKILL instead of exiting.
void RunChild(const Corpus& corpus, const ChildPlan& plan) {
  SetGlobalThreads(plan.threads);
  if (!plan.fault.empty()) obs::ArmFault(plan.fault, plan.fault_nth);
  std::string error;
  std::unique_ptr<obs::RunManifest> manifest = obs::RunManifest::Open(
      plan.manifest_dir, {{"test", "ckpt_crash_resume"}}, &error);
  if (manifest != nullptr) obs::SetActiveRunManifest(manifest.get());

  RlMinerOptions opts = CrashRl();
  opts.checkpoint.dir = plan.ckpt_dir;
  opts.checkpoint.every_episodes = 1;
  opts.checkpoint.keep_last = 3;
  if (plan.resume) opts.resume = "latest";
  RlMiner miner(&corpus, opts);
  Status st = miner.Resume();
  if (!st.ok()) {
    std::fprintf(stderr, "child resume failed: %s\n", st.ToString().c_str());
    ::_exit(3);
  }
  MineResult result = miner.Mine();
  WriteArtifacts(&miner, result, corpus, plan.artifact_path);
  obs::SetActiveRunManifest(nullptr);
  ::_exit(0);
}

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/erminer_crash_" +
            std::to_string(::getpid());
    std::filesystem::remove_all(root_);
    ASSERT_TRUE(std::filesystem::create_directories(root_));
    corpus_ = std::make_unique<Corpus>(MakeExactFdCorpus());
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// Forks, runs `plan` in the child, returns the raw waitpid status.
  int Run(const ChildPlan& plan) {
    ::pid_t pid = ::fork();
    if (pid == 0) RunChild(*corpus_, plan);  // never returns
    EXPECT_GT(pid, 0) << "fork failed";
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    return status;
  }

  std::string Dir(const std::string& name) {
    std::string d = root_ + "/" + name;
    std::filesystem::create_directories(d);
    return d;
  }

  /// Every snapshot visible to resume must load after a kill — partial
  /// files may only ever exist under a .tmp name.
  void ExpectAllSnapshotsLoadable(const std::string& dir,
                                  const std::string& context) {
    for (const auto& ref : ckpt::CheckpointManager::List(dir)) {
      Result<std::string> payload = ckpt::ReadSnapshotFile(ref.path);
      EXPECT_TRUE(payload.ok())
          << context << ": unloadable snapshot " << ref.path << ": "
          << payload.status().ToString();
    }
  }

  std::string root_;
  std::unique_ptr<Corpus> corpus_;
};

TEST_F(CrashResumeTest, KilledAtEveryFaultPointResumesBitIdentically) {
  const std::vector<long> thread_counts = {1, 2};
  // Hit counts chosen so each kill lands mid-training: per-episode points
  // on the third episode, per-checkpoint points on the second write.
  const std::map<std::string, uint64_t> nth = {
      {"train/episode_begin", 3},    {"train/episode_end", 3},
      {"ckpt/before_write", 2},      {"ckpt/after_tmp_write", 2},
      {"ckpt/after_rename", 2},      {"train/after_checkpoint", 2},
      {"manifest/append_episode", 3},
  };

  for (long threads : thread_counts) {
    const std::string tag = "t" + std::to_string(threads);
    // Uninterrupted reference run at this thread count.
    ChildPlan ref;
    ref.threads = threads;
    ref.ckpt_dir = Dir("ref_" + tag + "_ckpt");
    ref.manifest_dir = Dir("ref_" + tag + "_run");
    ref.artifact_path = root_ + "/ref_" + tag + ".txt";
    int status = Run(ref);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "reference run failed (status " << status << ")";
    const std::string expected = ReadFile(ref.artifact_path);
    ASSERT_FALSE(expected.empty());

    for (const std::string& point : obs::KnownFaultPoints()) {
      ASSERT_TRUE(nth.count(point) == 1)
          << "fault point " << point
          << " has no planned hit count — update this test";
      const std::string id =
          tag + "_" + std::to_string(std::distance(nth.begin(),
                                                   nth.find(point)));
      SCOPED_TRACE("threads=" + std::to_string(threads) + " fault=" + point);

      // 1. Kill a run at this exact point.
      ChildPlan crash;
      crash.threads = threads;
      crash.ckpt_dir = Dir("crash_" + id + "_ckpt");
      crash.manifest_dir = Dir("crash_" + id + "_run");
      crash.artifact_path = root_ + "/crash_" + id + ".txt";
      crash.fault = point;
      crash.fault_nth = nth.at(point);
      status = Run(crash);
      ASSERT_TRUE(WIFSIGNALED(status))
          << "child was not killed — fault point never hit (status "
          << status << ")";
      ASSERT_EQ(WTERMSIG(status), SIGKILL);
      ASSERT_FALSE(std::filesystem::exists(crash.artifact_path))
          << "killed child still produced artifacts";
      ExpectAllSnapshotsLoadable(crash.ckpt_dir, "after kill at " + point);

      // 2. Resume in a fresh process and finish.
      ChildPlan resume = crash;
      resume.fault.clear();
      resume.resume = true;
      resume.manifest_dir = Dir("resume_" + id + "_run");
      status = Run(resume);
      ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "resumed run failed (status " << status << ")";

      // 3. The resumed run's final state is byte-identical to never
      //    having been interrupted.
      EXPECT_EQ(ReadFile(resume.artifact_path), expected);
    }
  }
}

TEST_F(CrashResumeTest, ThreadCountsAgreeWithEachOther) {
  // The t=1 and t=2 reference artifacts must match too (the repo-wide
  // bit-identical parallelism invariant extends through checkpointing).
  std::vector<std::string> artifacts;
  for (long threads : {1L, 2L}) {
    ChildPlan ref;
    ref.threads = threads;
    ref.ckpt_dir = Dir("xthr_" + std::to_string(threads) + "_ckpt");
    ref.manifest_dir = Dir("xthr_" + std::to_string(threads) + "_run");
    ref.artifact_path = root_ + "/xthr_" + std::to_string(threads) + ".txt";
    int status = Run(ref);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    artifacts.push_back(ReadFile(ref.artifact_path));
  }
  ASSERT_FALSE(artifacts[0].empty());
  EXPECT_EQ(artifacts[0], artifacts[1]);
}

TEST_F(CrashResumeTest, SigtermWritesAnEpisodeAlignedSnapshot) {
  // SIGTERM (unlike SIGKILL) routes through obs::InstallSignalFlushHandlers
  // → the registered checkpoint flush. Delivery is deferred to the episode
  // boundary, so the snapshot it leaves behind is loadable and resumable.
  const std::string ckpt_dir = Dir("sigterm_ckpt");
  const std::string run_dir = Dir("sigterm_run");
  ::pid_t pid = ::fork();
  if (pid == 0) {
    SetGlobalThreads(1);
    // Stall training long enough for the parent to deliver SIGTERM: a huge
    // horizon, checkpoint cadence off (every=0) so any snapshot present
    // can only have come from the signal path. The manifest's episode
    // lines double as the "training has started" handshake.
    std::string error;
    std::unique_ptr<obs::RunManifest> manifest =
        obs::RunManifest::Open(run_dir, {{"test", "sigterm"}}, &error);
    if (manifest == nullptr) ::_exit(5);
    obs::SetActiveRunManifest(manifest.get());
    RlMinerOptions opts = CrashRl();
    opts.train_steps = 40000000;
    opts.checkpoint.dir = ckpt_dir;
    opts.checkpoint.every_episodes = 0;
    obs::InstallSignalFlushHandlers();
    RlMiner miner(&*corpus_, opts);
    miner.Train();
    ::_exit(0);  // not reached: SIGTERM exits through the flush handler
  }
  ASSERT_GT(pid, 0);
  // Wait until at least one episode has been appended — the train loop is
  // then definitely running with the signal hook armed — and terminate.
  const std::string episodes_path = run_dir + "/episodes.jsonl";
  bool started = false;
  for (int i = 0; i < 600 && !started; ++i) {
    std::error_code ec;
    started = std::filesystem::file_size(episodes_path, ec) > 0 && !ec;
    if (!started) ::usleep(100 * 1000);
  }
  ASSERT_TRUE(started) << "child never reached the train loop";
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGTERM)
      << "child did not exit through SIGTERM re-raise (status " << status
      << ")";

  std::vector<ckpt::SnapshotRef> list = ckpt::CheckpointManager::List(ckpt_dir);
  ASSERT_EQ(list.size(), 1u) << "signal flush did not write a snapshot";
  Result<std::string> payload = ckpt::ReadSnapshotFile(list[0].path);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();

  // A fresh miner can load it and keep training.
  RlMinerOptions opts = CrashRl();
  opts.checkpoint.dir = ckpt_dir;
  opts.resume = "latest";
  RlMiner miner(&*corpus_, opts);
  ASSERT_TRUE(miner.Resume().ok());
  EXPECT_EQ(miner.resumed_from(), list[0].path);
  EXPECT_GT(miner.steps_done(), 0u);
}

}  // namespace
}  // namespace erminer
