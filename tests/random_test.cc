#include "util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(13), 13u);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, GaussianMeanAndVariance) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.NextWeighted(w)] += 1;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, ZipfSkewsTowardsSmallIndices) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.NextZipf(10, 1.0)] += 1;
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[1], counts[9]);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(23);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) counts[rng.NextZipf(4, 0.0)] += 1;
  for (int c : counts) EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(31);
  auto ids = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(ids.size(), 30u);
  std::set<size_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t id : ids) EXPECT_LT(id, 100u);
}

TEST(RngTest, SampleAllReturnsEverything) {
  Rng rng(37);
  auto ids = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(41);
  b.Next();  // parent consumed one draw for the fork
  EXPECT_EQ(a.Next(), b.Next());
  (void)child.Next();
}

}  // namespace
}  // namespace erminer
