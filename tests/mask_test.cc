// Algorithm 1 properties: bound attributes closed, duplicates blocked,
// stop never masked — checked directly and as a randomized property.

#include "core/mask.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

class MaskFixture : public ::testing::Test {
 protected:
  MaskFixture() : corpus_(MakeTinyCorpus()),
                  space_(ActionSpace::Build(corpus_, {})) {}
  Corpus corpus_;
  ActionSpace space_;
};

TEST_F(MaskFixture, EmptyRuleAllowsEverything) {
  auto mask = ComputeMask(space_, {}, {});
  for (uint8_t m : mask) EXPECT_EQ(m, 1);
}

TEST_F(MaskFixture, LocalMaskClosesBoundLhsAttribute) {
  // Action 0 is the (A, A) pair; once bound, all LHS actions of A masked.
  auto mask = ComputeMask(space_, {0}, {});
  EXPECT_EQ(mask[0], 0);
  // Pattern actions of A remain allowed (pattern may condition on X attrs).
  for (int32_t i : space_.PatternActionsOfAttr(0)) {
    EXPECT_EQ(mask[static_cast<size_t>(i)], 1);
  }
}

TEST_F(MaskFixture, LocalMaskClosesBoundPatternAttribute) {
  int32_t g1 = space_.PatternActionsOfAttr(1)[0];
  auto mask = ComputeMask(space_, {g1}, {});
  for (int32_t i : space_.PatternActionsOfAttr(1)) {
    EXPECT_EQ(mask[static_cast<size_t>(i)], 0);
  }
  // Other attributes stay open.
  for (int32_t i : space_.PatternActionsOfAttr(0)) {
    EXPECT_EQ(mask[static_cast<size_t>(i)], 1);
  }
}

TEST_F(MaskFixture, GlobalMaskBlocksRegeneratingExistingRule) {
  int32_t g1 = space_.PatternActionsOfAttr(1)[0];
  RuleKeySet discovered;
  discovered.insert(RuleKey{0, g1});
  // From state {0}, taking g1 would regenerate {0, g1}.
  auto mask = ComputeMask(space_, {0}, discovered);
  EXPECT_EQ(mask[static_cast<size_t>(g1)], 0);
  // From state {g1}, taking 0 would too.
  auto mask2 = ComputeMask(space_, {g1}, discovered);
  EXPECT_EQ(mask2[0], 0);
  // Unrelated extensions stay allowed.
  int32_t a1 = space_.PatternActionsOfAttr(0)[0];
  EXPECT_EQ(mask[static_cast<size_t>(a1)], 1);
}

TEST_F(MaskFixture, StopNeverMasked) {
  RuleKeySet discovered;
  // Saturate: mark every single-extension rule as discovered.
  for (int32_t a = 0; a < space_.stop_action(); ++a) {
    discovered.insert(RuleKey{a});
  }
  auto mask = ComputeMask(space_, {}, discovered);
  EXPECT_EQ(mask.back(), 1);
  EXPECT_EQ(CountAllowed(mask), 0u);
}

TEST_F(MaskFixture, CountAllowedExcludesStop) {
  auto mask = ComputeMask(space_, {}, {});
  EXPECT_EQ(CountAllowed(mask), space_.state_dim());
}

// Property over random walks: an allowed action never re-specifies a bound
// attribute and never regenerates a discovered rule.
class MaskProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskProperty, SoundOverRandomWalks) {
  Corpus corpus = MakeTinyCorpus();
  ActionSpace space = ActionSpace::Build(corpus, {});
  Rng rng(GetParam());
  RuleKeySet discovered;
  RuleKey key;
  for (int step = 0; step < 6; ++step) {
    auto mask = ComputeMask(space, key, discovered);
    ASSERT_EQ(mask.back(), 1);
    for (int32_t a = 0; a < space.stop_action(); ++a) {
      if (!mask[static_cast<size_t>(a)]) continue;
      // Allowed => not already a bound attribute.
      EditingRule rule = space.Decode(key);
      if (space.IsLhsAction(a)) {
        EXPECT_FALSE(rule.HasLhsAttr(space.lhs_action(a).a));
      } else {
        EXPECT_FALSE(rule.pattern.SpecifiesAttr(space.pattern_item(a).attr));
      }
      // Allowed => does not regenerate a discovered rule.
      EXPECT_EQ(discovered.count(KeyWith(key, a)), 0u);
    }
    // Take a random allowed action, if any.
    std::vector<int32_t> allowed;
    for (int32_t a = 0; a < space.stop_action(); ++a) {
      if (mask[static_cast<size_t>(a)]) allowed.push_back(a);
    }
    if (allowed.empty()) break;
    key = KeyWith(key, allowed[rng.NextUint64(allowed.size())]);
    discovered.insert(key);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWalks, MaskProperty,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace erminer
