#include "core/certain_fix.h"

#include <gtest/gtest.h>

#include "data/schema_match.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

ScoredRule RuleOn(const Corpus& c, int a, int am) {
  EditingRule r;
  r.y_input = c.y_input();
  r.y_master = c.y_master();
  r.AddLhs(a, am);
  return {r, {}};
}

TEST(CertainFixTest, ClassifiesTinyCorpus) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  // Rule {(A,A)}: group a1 has two candidates (ambiguous), a2 one
  // (certain), a3 no master match (uncovered).
  CertainFixOutcome out = ComputeCertainFixes(&ev, {RuleOn(c, 0, 0)});
  EXPECT_EQ(out.kind[0], FixKind::kAmbiguous);  // a1
  EXPECT_EQ(out.kind[1], FixKind::kAmbiguous);  // a1
  EXPECT_EQ(out.kind[2], FixKind::kCertain);    // a2 -> y2
  EXPECT_EQ(out.kind[3], FixKind::kNoRule);     // a3
  EXPECT_EQ(out.kind[4], FixKind::kAmbiguous);  // a1
  EXPECT_EQ(out.fix[2], c.y_domain()->Lookup("y2"));
  EXPECT_EQ(out.fix[0], kNullCode);
  EXPECT_EQ(out.num_certain, 1u);
  EXPECT_EQ(out.num_ambiguous, 3u);
  EXPECT_EQ(out.num_uncovered, 1u);
  EXPECT_EQ(out.num_conflicting, 0u);
}

Corpus ConflictCorpus() {
  // Two master attributes that each uniquely (but differently) determine Y
  // for the same input tuple.
  StringTable in;
  in.schema = Schema::FromNames({"A", "B", "Y"});
  in.rows = {{"a1", "b1", "y1"}};
  StringTable ms;
  ms.schema = Schema::FromNames({"A", "B", "Y"});
  ms.rows = {{"a1", "bX", "y1"}, {"aX", "b1", "y2"}};
  SchemaMatch m(3);
  m.AddPair(0, 0);
  m.AddPair(1, 1);
  m.AddPair(2, 2);
  return Corpus::Build(in, ms, m, 2, 2).ValueOrDie();
}

TEST(CertainFixTest, DetectsConflictingRules) {
  Corpus c = ConflictCorpus();
  RuleEvaluator ev(&c);
  CertainFixOutcome out =
      ComputeCertainFixes(&ev, {RuleOn(c, 0, 0), RuleOn(c, 1, 1)});
  EXPECT_EQ(out.kind[0], FixKind::kConflicting);
  EXPECT_EQ(out.fix[0], kNullCode);
  EXPECT_EQ(out.num_conflicting, 1u);
}

TEST(CertainFixTest, AgreeingRulesStayCertain) {
  Corpus c = ConflictCorpus();
  RuleEvaluator ev(&c);
  // The same rule twice: agreement keeps the fix certain.
  CertainFixOutcome out =
      ComputeCertainFixes(&ev, {RuleOn(c, 0, 0), RuleOn(c, 0, 0)});
  EXPECT_EQ(out.kind[0], FixKind::kCertain);
  EXPECT_EQ(out.fix[0], c.y_domain()->Lookup("y1"));
}

TEST(CertainFixTest, AmbiguityIsSticky) {
  // Once a rule returns multiple candidates for a tuple, a later unique
  // rule must not resurrect certainty.
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  // Pattern rule covering only g1 rows with the A rule's ambiguity first.
  EditingRule narrow;
  narrow.y_input = 2;
  narrow.y_master = 1;
  narrow.AddLhs(0, 0);
  narrow.pattern.Add({1, {c.input().domain(1)->Lookup("g2")}, "g2"});
  CertainFixOutcome out =
      ComputeCertainFixes(&ev, {RuleOn(c, 0, 0), {narrow, {}}});
  EXPECT_EQ(out.kind[1], FixKind::kAmbiguous);  // row r1 (a1, g2)
}

TEST(CertainFixTest, EmptyRuleSetLeavesAllUncovered) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  CertainFixOutcome out = ComputeCertainFixes(&ev, {});
  EXPECT_EQ(out.num_uncovered, c.input().num_rows());
}

}  // namespace
}  // namespace erminer
