#include "core/rule.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

PatternItem Item(int attr, std::vector<ValueCode> values,
                 std::string label = "v") {
  return {attr, std::move(values), std::move(label)};
}

TEST(PatternItemTest, MatchesMembershipOnly) {
  PatternItem it = Item(0, {2, 5});
  EXPECT_TRUE(it.Matches(2));
  EXPECT_TRUE(it.Matches(5));
  EXPECT_FALSE(it.Matches(3));
  EXPECT_FALSE(it.Matches(kNullCode));
}

TEST(PatternTest, AddKeepsAttrOrder) {
  Pattern p;
  p.Add(Item(3, {1}));
  p.Add(Item(1, {2}));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.items()[0].attr, 1);
  EXPECT_EQ(p.items()[1].attr, 3);
  EXPECT_TRUE(p.SpecifiesAttr(3));
  EXPECT_FALSE(p.SpecifiesAttr(2));
}

TEST(PatternTest, MatchesRowConjunction) {
  Corpus c = MakeTinyCorpus();
  Domain* da = c.input().domain(0).get();
  Domain* dg = c.input().domain(1).get();
  Pattern p;
  p.Add(Item(0, {da->Lookup("a1")}));
  p.Add(Item(1, {dg->Lookup("g1")}));
  EXPECT_TRUE(p.MatchesRow(c.input(), 0));   // (a1, g1)
  EXPECT_FALSE(p.MatchesRow(c.input(), 1));  // (a1, g2)
  EXPECT_FALSE(p.MatchesRow(c.input(), 2));  // (a2, g1)
}

TEST(PatternTest, EmptyPatternMatchesEverything) {
  Corpus c = MakeTinyCorpus();
  Pattern p;
  for (size_t r = 0; r < c.input().num_rows(); ++r) {
    EXPECT_TRUE(p.MatchesRow(c.input(), r));
  }
}

TEST(PatternTest, DominationIsSubsetWithEqualConditions) {
  Pattern small, big, different;
  small.Add(Item(0, {1}));
  big.Add(Item(0, {1}));
  big.Add(Item(2, {7}));
  different.Add(Item(0, {2}));
  EXPECT_TRUE(small.DominatesOrEquals(big));
  EXPECT_FALSE(big.DominatesOrEquals(small));
  EXPECT_TRUE(small.DominatesOrEquals(small));
  EXPECT_FALSE(small.DominatesOrEquals(different));
  EXPECT_FALSE(different.DominatesOrEquals(small));
  Pattern empty;
  EXPECT_TRUE(empty.DominatesOrEquals(small));
}

EditingRule Rule(LhsPairs lhs, Pattern p = {}) {
  EditingRule r;
  r.lhs = std::move(lhs);
  r.y_input = 2;
  r.y_master = 1;
  r.pattern = std::move(p);
  return r;
}

TEST(EditingRuleTest, AddLhsSortsAndForbidsDuplicates) {
  EditingRule r = Rule({});
  r.AddLhs(3, 1);
  r.AddLhs(0, 0);
  EXPECT_EQ(r.lhs, (LhsPairs{{0, 0}, {3, 1}}));
  EXPECT_TRUE(r.HasLhsAttr(3));
  EXPECT_FALSE(r.HasLhsAttr(1));
}

TEST(EditingRuleTest, DominationRequiresSubsetBothParts) {
  Pattern p1, p2;
  p1.Add(Item(1, {5}));
  p2.Add(Item(1, {5}));
  p2.Add(Item(4, {6}));

  EditingRule general = Rule({{0, 0}}, p1);
  EditingRule specific = Rule({{0, 0}, {3, 2}}, p2);
  EXPECT_TRUE(general.Dominates(specific));
  EXPECT_FALSE(specific.Dominates(general));
}

TEST(EditingRuleTest, EqualRulesDoNotDominate) {
  EditingRule a = Rule({{0, 0}});
  EditingRule b = Rule({{0, 0}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.Dominates(b));
}

TEST(EditingRuleTest, SameLhsPatternSubsetDominates) {
  Pattern p;
  p.Add(Item(1, {5}));
  EditingRule no_pattern = Rule({{0, 0}});
  EditingRule with_pattern = Rule({{0, 0}}, p);
  EXPECT_TRUE(no_pattern.Dominates(with_pattern));
  EXPECT_FALSE(with_pattern.Dominates(no_pattern));
}

TEST(EditingRuleTest, DifferentTargetNeverDominates) {
  EditingRule a = Rule({{0, 0}});
  EditingRule b = Rule({{0, 0}, {1, 1}});
  b.y_input = 0;
  EXPECT_FALSE(a.Dominates(b));
}

TEST(EditingRuleTest, IncomparableLhsSetsDoNotDominate) {
  EditingRule a = Rule({{0, 0}});
  EditingRule b = Rule({{1, 1}});
  EXPECT_FALSE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
}

TEST(EditingRuleTest, ToStringIsReadable) {
  Corpus c = MakeTinyCorpus();
  Pattern p;
  p.Add({1, {c.input().domain(1)->Lookup("g1")}, "g1"});
  EditingRule r = Rule({{0, 0}}, p);
  EXPECT_EQ(r.ToString(c), "((A,A)) -> (Y,Y), tp[G]=(g1)");
  EditingRule plain = Rule({{0, 0}});
  EXPECT_EQ(plain.ToString(c), "((A,A)) -> (Y,Y), tp=()");
}

}  // namespace
}  // namespace erminer
