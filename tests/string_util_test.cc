#include "util/string_util.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, EmptyStringIsOneField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsSplit) {
  std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi there\t\n"), "hi there");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12z"), "abc-12z");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("postcode", "post"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("po", "post"));
}

TEST(CommonPrefixLenTest, Basic) {
  EXPECT_EQ(CommonPrefixLen("case12", "case19"), 5u);
  EXPECT_EQ(CommonPrefixLen("abc", "abc"), 3u);
  EXPECT_EQ(CommonPrefixLen("a", "b"), 0u);
  EXPECT_EQ(CommonPrefixLen("", "b"), 0u);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(0.516, 2), "0.52");
  EXPECT_EQ(FormatDouble(-1.0, 1), "-1.0");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(FormatSecondsTest, SmallAndHuge) {
  EXPECT_EQ(FormatSeconds(1.5), "1.500");
  EXPECT_EQ(FormatSeconds(2e7), "2.0e+07");
}

}  // namespace
}  // namespace erminer
