// Registry correctness: counter/gauge/histogram semantics, name-identity,
// snapshot deltas, and JSON export shape. A minimal test-local JSON reader
// keeps the round-trip assertions honest without pulling in a JSON library.

#include "obs/metrics.h"

#include <cmath>
#include <string>

#include "gtest/gtest.h"

namespace erminer::obs {
namespace {

// Extracts the numeric value following "\"key\":" in a JSON string, or NaN
// when the key is absent. Good enough for the flat objects we emit.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

TEST(CounterTest, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketAssignment) {
  // Bounds are inclusive upper bounds; one overflow bucket is implicit.
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1      -> bucket 0
  h.Observe(1.0);    // == bound  -> bucket 0 (inclusive)
  h.Observe(5.0);    // <= 10     -> bucket 1
  h.Observe(100.0);  // == bound  -> bucket 2
  h.Observe(1e6);    // overflow  -> bucket 3
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (uint64_t b : h.bucket_counts()) EXPECT_EQ(b, 0u);
}

TEST(RegistryTest, SameNameSameObject) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("obs_test/identity");
  Counter& b = reg.GetCounter("obs_test/identity");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.GetGauge("obs_test/identity_gauge");
  Gauge& g2 = reg.GetGauge("obs_test/identity_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.GetHistogram("obs_test/identity_hist", {1.0, 2.0});
  Histogram& h2 = reg.GetHistogram("obs_test/identity_hist", {9.0});
  EXPECT_EQ(&h1, &h2);
  // Bounds from the first registration win.
  EXPECT_EQ(h1.bounds().size(), 2u);
}

TEST(RegistryTest, MacrosHitTheGlobalRegistry) {
  Counter& c = MetricsRegistry::Global().GetCounter("obs_test/macro_count");
  c.Reset();
  for (int i = 0; i < 3; ++i) ERMINER_COUNT("obs_test/macro_count", 2);
  EXPECT_EQ(c.value(), 6u);

  ERMINER_GAUGE_SET("obs_test/macro_gauge", 7.25);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("obs_test/macro_gauge").value(),
      7.25);

  Histogram& h = MetricsRegistry::Global().GetHistogram("obs_test/macro_hist");
  const uint64_t before = h.count();
  ERMINER_HISTOGRAM("obs_test/macro_hist", 0.5);
  EXPECT_EQ(h.count(), before + 1);
}

TEST(RegistryTest, SnapshotDelta) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("obs_test/delta_count");
  c.Reset();
  c.Inc(10);
  MetricsSnapshot before = reg.Snapshot();
  c.Inc(32);
  MetricsSnapshot delta = reg.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at("obs_test/delta_count"), 32u);

  // A counter that was reset in between must clamp, not underflow.
  c.Reset();
  c.Inc(5);
  MetricsSnapshot after_reset = reg.Snapshot().DeltaSince(before);
  EXPECT_EQ(after_reset.counters.at("obs_test/delta_count"), 5u);
}

TEST(RegistryTest, JsonRoundTrip) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test/json_count").Reset();
  reg.GetCounter("obs_test/json_count").Inc(123);
  reg.GetGauge("obs_test/json_gauge").Set(2.5);
  Histogram& h = reg.GetHistogram("obs_test/json_hist", {1.0, 10.0});
  h.Reset();
  h.Observe(0.5);
  h.Observe(50.0);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_DOUBLE_EQ(JsonNumber(json, "obs_test/json_count"), 123.0);
  EXPECT_DOUBLE_EQ(JsonNumber(json, "obs_test/json_gauge"), 2.5);
  // The histogram object carries count and sum.
  size_t hist_pos = json.find("obs_test/json_hist");
  ASSERT_NE(hist_pos, std::string::npos);
  const std::string hist_json = json.substr(hist_pos);
  EXPECT_DOUBLE_EQ(JsonNumber(hist_json, "count"), 2.0);
  EXPECT_DOUBLE_EQ(JsonNumber(hist_json, "sum"), 50.5);
}

TEST(RegistryTest, CountersJsonSkipsZeroes) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test/zero_count").Reset();
  reg.GetCounter("obs_test/nonzero_count").Reset();
  reg.GetCounter("obs_test/nonzero_count").Inc(9);
  const std::string json = reg.Snapshot().CountersJson();
  EXPECT_EQ(json.find("obs_test/zero_count"), std::string::npos);
  EXPECT_DOUBLE_EQ(JsonNumber(json, "obs_test/nonzero_count"), 9.0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, ResetAllKeepsReferencesValid) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("obs_test/reset_all");
  c.Inc(7);
  const size_t n = reg.num_metrics();
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.num_metrics(), n);  // objects survive, values zeroed
  c.Inc(1);                         // cached reference still works
  EXPECT_EQ(c.value(), 1u);
}

}  // namespace
}  // namespace erminer::obs
