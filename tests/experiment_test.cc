// The experiment harness: corpus building, truth encoding, scoring.

#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

GeneratedDataset SmallCovid(uint64_t seed = 41) {
  GenOptions g;
  g.input_size = 300;
  g.master_size = 250;
  g.seed = seed;
  return MakeCovid(g).ValueOrDie();
}

TEST(ExperimentTest, MethodNamesAreStable) {
  EXPECT_STREQ(MethodName(Method::kCtane), "CTANE");
  EXPECT_STREQ(MethodName(Method::kEnuMiner), "EnuMiner");
  EXPECT_STREQ(MethodName(Method::kEnuMinerH3), "EnuMinerH3");
  EXPECT_STREQ(MethodName(Method::kRlMiner), "RLMiner");
}

TEST(ExperimentTest, BuildCorpusUsesDatasetTarget) {
  GeneratedDataset ds = SmallCovid();
  Corpus c = BuildCorpus(ds).ValueOrDie();
  EXPECT_EQ(c.y_input(), ds.y_input);
  EXPECT_EQ(c.y_master(), ds.y_master);
  EXPECT_EQ(c.input().num_rows(), ds.input.num_rows());
}

TEST(ExperimentTest, EncodeTruthMatchesCleanCells) {
  GeneratedDataset ds = SmallCovid();
  Corpus c = BuildCorpus(ds).ValueOrDie();
  auto truth = EncodeTruth(c, ds);
  ASSERT_EQ(truth.size(), ds.input.num_rows());
  auto dirty = ds.YDirty();
  size_t y = static_cast<size_t>(ds.y_input);
  for (size_t r = 0; r < truth.size(); ++r) {
    if (!dirty[r]) {
      // Clean cell: the encoded truth equals the input's code.
      EXPECT_EQ(truth[r], c.input().at(r, y)) << "row " << r;
    }
  }
}

TEST(ExperimentTest, ScoreRulesPopulatesAllFields) {
  GeneratedDataset ds = SmallCovid();
  Corpus c = BuildCorpus(ds).ValueOrDie();
  MinerOptions o;
  o.k = 8;
  o.support_threshold = 15;
  MineResult mine = EnuMine(c, o);
  ASSERT_FALSE(mine.rules.empty());
  TrialResult tr = ScoreRules(c, ds, std::move(mine));
  EXPECT_GT(tr.repair.num_rows, 0u);
  EXPECT_GE(tr.lengths.lhs_min, 1u);
  EXPECT_LE(tr.repair_dirty.num_rows, tr.repair.num_rows);
  EXPECT_FALSE(tr.mine.rules.empty());
}

TEST(ExperimentTest, DefaultOptionsInheritDatasetThreshold) {
  GeneratedDataset ds = SmallCovid();
  MinerOptions o = DefaultMinerOptions(ds, 7);
  EXPECT_EQ(o.k, 7u);
  EXPECT_DOUBLE_EQ(o.support_threshold, ds.support_threshold);
  RlMinerOptions rl = DefaultRlOptions(ds, 9, 123);
  EXPECT_EQ(rl.base.k, 9u);
  EXPECT_EQ(rl.seed, 123u);
}

TEST(ExperimentTest, DirtyMaskScoresSubset) {
  GeneratedDataset ds = SmallCovid();
  Corpus c = BuildCorpus(ds).ValueOrDie();
  MinerOptions o;
  o.k = 8;
  o.support_threshold = 15;
  TrialResult tr =
      RunTrial(ds, Method::kEnuMiner, o, DefaultRlOptions(ds)).ValueOrDie();
  auto dirty = ds.YDirty();
  size_t dirty_count = 0;
  for (bool d : dirty) dirty_count += d;
  // Some dirty Y cells may hold NULL truth? Truth is clean, never null.
  EXPECT_EQ(tr.repair_dirty.num_rows, dirty_count);
}

}  // namespace
}  // namespace erminer
