#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(TensorTest, ConstructAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(0, 1), 7.0f);
}

TEST(TensorTest, FromDataChecksShape) {
  Tensor t = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransAMatchesExplicit) {
  Tensor a = Tensor::FromData(3, 2, {1, 4, 2, 5, 3, 6});  // = A^T of above
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMulTransA(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransBMatchesExplicit) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(2, 3, {7, 9, 11, 8, 10, 12});  // = B^T
  Tensor c = MatMulTransB(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
}

TEST(MatMulTest, SparseRowsSkipWork) {
  // Correctness with zero entries (the one-hot fast path).
  Tensor a = Tensor::FromData(1, 4, {0, 1, 0, 0});
  Tensor b = Tensor::FromData(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 4.0f);
}

TEST(BiasTest, RowBroadcast) {
  Tensor y(2, 2, 1.0f);
  Tensor bias = Tensor::FromData(1, 2, {10, 20});
  AddBiasInPlace(&y, bias);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 21.0f);
}

TEST(ReluTest, ForwardAndBackward) {
  Tensor x = Tensor::FromData(1, 4, {-1, 0, 2, -3});
  Tensor y = Relu(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
  Tensor g = Tensor::FromData(1, 4, {1, 1, 1, 1});
  Tensor gx = ReluBackward(x, g);
  EXPECT_FLOAT_EQ(gx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 1), 0.0f);  // zero input gets zero grad
  EXPECT_FLOAT_EQ(gx.at(0, 2), 1.0f);
}

TEST(SumRowsTest, ColumnTotals) {
  Tensor x = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor s = SumRows(x);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_FLOAT_EQ(s.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(s.at(0, 2), 9.0f);
}

TEST(AxpyTest, ScaledAccumulate) {
  Tensor a = Tensor::FromData(1, 2, {1, 2});
  Tensor b = Tensor::FromData(1, 2, {10, 20});
  Axpy(0.5f, b, &a);
  EXPECT_FLOAT_EQ(a.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 12.0f);
}

}  // namespace
}  // namespace erminer
