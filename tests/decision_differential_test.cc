// Differential tests for the decision log's zero-interference contract:
// mined rules (with provenance ids) and repaired cells must be bit-identical
// with the log armed or disarmed, at threads 1, 2 and 4 — the log observes
// the search, it never steers it. On top of identity, every armed run's log
// must *resolve*: each emitted rule's provenance id replays to a complete
// decision path (expansion chain reaching the root for EnuMiner/Beam/CTANE,
// a non-empty episode trajectory for RLMiner) and the repair audit stream
// matches the repair outcome cell for cell.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/beam_miner.h"
#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "core/repair.h"
#include "eval/experiment.h"
#include "obs/decision_explain.h"
#include "obs/decision_log.h"
#include "rl/rl_miner.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;
using erminer::testing::SeededCorpusCache;

std::string LogPath(const std::string& tag) {
  return ::testing::TempDir() + "/erminer_decision_diff_" + tag + "_" +
         std::to_string(::getpid()) + ".dlog";
}

struct Artifacts {
  MineResult mine;
  RepairOutcome repair;
};

Artifacts RunAt(long threads, const GeneratedDataset& ds,
                const std::function<MineResult(const Corpus&)>& mine,
                const std::string& log_path) {
  if (!log_path.empty()) {
    std::string error;
    EXPECT_TRUE(obs::DecisionLog::Global().Open(log_path, &error)) << error;
  }
  SetGlobalThreads(threads);
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  Artifacts out;
  out.mine = mine(corpus);
  RuleEvaluator evaluator(&corpus);
  out.repair = ApplyRules(&evaluator, out.mine.rules);
  SetGlobalThreads(1);
  if (!log_path.empty()) obs::DecisionLog::Global().Close();
  return out;
}

/// EXPECT_EQ on doubles is deliberate: the contract is bit-identity.
void ExpectIdentical(const Artifacts& a, const Artifacts& b) {
  ASSERT_EQ(a.mine.rules.size(), b.mine.rules.size());
  for (size_t i = 0; i < a.mine.rules.size(); ++i) {
    EXPECT_EQ(a.mine.rules[i].rule, b.mine.rules[i].rule) << "rule " << i;
    EXPECT_EQ(a.mine.rules[i].provenance, b.mine.rules[i].provenance);
    EXPECT_EQ(a.mine.rules[i].stats.support, b.mine.rules[i].stats.support);
    EXPECT_EQ(a.mine.rules[i].stats.certainty,
              b.mine.rules[i].stats.certainty);
    EXPECT_EQ(a.mine.rules[i].stats.quality, b.mine.rules[i].stats.quality);
    EXPECT_EQ(a.mine.rules[i].stats.utility, b.mine.rules[i].stats.utility);
  }
  EXPECT_EQ(a.mine.nodes_explored, b.mine.nodes_explored);
  EXPECT_EQ(a.repair.prediction, b.repair.prediction);
  EXPECT_EQ(a.repair.num_predictions, b.repair.num_predictions);
  ASSERT_EQ(a.repair.score.size(), b.repair.score.size());
  for (size_t i = 0; i < a.repair.score.size(); ++i) {
    EXPECT_EQ(a.repair.score[i], b.repair.score[i]) << "row " << i;
  }
}

/// Every mined rule's provenance id must resolve in `log_path` to a
/// complete decision path, and the repair audit stream must match the
/// repair outcome exactly.
void VerifyProvenanceResolves(const std::string& log_path,
                              const Artifacts& art) {
  obs::DecisionLogContents log = obs::ReadDecisionLogFile(log_path);
  ASSERT_TRUE(log.ok()) << log.error;
  ASSERT_FALSE(log.truncated);

  for (const ScoredRule& sr : art.mine.rules) {
    ASSERT_NE(sr.provenance, 0u);
    obs::DecisionPath path = obs::ReplayDecisionPath(log, sr.provenance);
    ASSERT_TRUE(path.found) << path.error;
    EXPECT_EQ(path.emit.rule_id, sr.provenance);
    EXPECT_EQ(path.emit.support, sr.stats.support);
    EXPECT_EQ(path.emit.utility, sr.stats.utility);
    if (path.emit.miner == static_cast<uint8_t>(obs::DecisionMiner::kRl)) {
      // RLMiner provenance is the episode trajectory, not a lattice chain.
      EXPECT_FALSE(path.trajectory.empty());
      EXPECT_NE(path.emit.episode, 0u);
      for (const obs::DecisionEvent& step : path.trajectory) {
        EXPECT_EQ(step.episode, path.emit.episode);
      }
    } else {
      ASSERT_FALSE(path.chain.empty());
      // Complete to the root: the first expansion grows the empty LHS.
      EXPECT_TRUE(path.chain.front().parent_key.empty());
      EXPECT_EQ(path.chain.back().key, path.emit.key);
    }
    EXPECT_FALSE(obs::FormatDecisionPath(path).empty());
  }

  size_t repair_events = 0;
  for (const obs::DecisionEvent& e : log.events) {
    if (e.type != obs::DecisionEventType::kRepair) continue;
    ++repair_events;
    ASSERT_LT(e.row, art.repair.prediction.size());
    EXPECT_EQ(art.repair.prediction[static_cast<size_t>(e.row)],
              e.new_value);
    EXPECT_EQ(art.repair.score[static_cast<size_t>(e.row)], e.measure);
    EXPECT_NE(e.rule_id, 0u);
  }
  EXPECT_EQ(repair_events, art.repair.num_predictions);
}

MinerOptions OptionsFor(const GeneratedDataset& ds) {
  MinerOptions o;
  o.k = 20;
  o.support_threshold =
      std::max(10.0, static_cast<double>(ds.input.num_rows()) / 40.0);
  o.max_nodes = 200'000;
  return o;
}

void RunMinerMatrix(const std::string& tag,
                    const GeneratedDataset& ds,
                    const std::function<MineResult(const Corpus&)>& mine) {
  Artifacts baseline = RunAt(1, ds, mine, "");
  ASSERT_FALSE(baseline.mine.rules.empty());
  for (long threads : {1L, 2L, 4L}) {
    SCOPED_TRACE(tag + " threads=" + std::to_string(threads));
    const std::string log_path =
        LogPath(tag + "_t" + std::to_string(threads));
    Artifacts armed = RunAt(threads, ds, mine, log_path);
    ExpectIdentical(baseline, armed);
    VerifyProvenanceResolves(log_path, armed);
    std::remove(log_path.c_str());
  }
}

TEST(DecisionDifferentialTest, EnuMiner) {
  const GeneratedDataset& ds = SeededCorpusCache::Get("Adult", 1200, 400, 93);
  RunMinerMatrix("enu", ds, [&](const Corpus& c) {
    return EnuMineH3(c, OptionsFor(ds));
  });
}

TEST(DecisionDifferentialTest, Ctane) {
  const GeneratedDataset& ds = SeededCorpusCache::Get("Adult", 1200, 400, 93);
  RunMinerMatrix("ctane", ds, [&](const Corpus& c) {
    return CfdMine(c, OptionsFor(ds));
  });
}

TEST(DecisionDifferentialTest, BeamMiner) {
  const GeneratedDataset& ds = SeededCorpusCache::Get("Adult", 1200, 400, 93);
  RunMinerMatrix("beam", ds, [&](const Corpus& c) {
    return BeamMine(c, OptionsFor(ds));
  });
}

TEST(DecisionDifferentialTest, RlMinerInference) {
  const GeneratedDataset& ds = SeededCorpusCache::Get("Adult", 1200, 400, 93);
  RlMinerOptions rl;
  rl.base = OptionsFor(ds);
  rl.seed = 123;
  rl.max_inference_steps = 200;
  RunMinerMatrix("rl", ds, [&](const Corpus& c) {
    RlMiner miner(&c, rl);
    return miner.Infer();
  });
}

TEST(DecisionDifferentialTest, RlTrainingArmedMatchesDisarmed) {
  // Full training loop at threads=1: the armed run's extra Q-value forward
  // per step must consume no RNG, so the epsilon draws — and therefore the
  // whole trajectory and the mined rules — stay bit-identical.
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions o;
  o.base.k = 8;
  o.base.support_threshold = 20;
  o.train_steps = 300;
  o.seed = 21;
  o.dqn.hidden = {32, 32};

  auto run = [&](const std::string& log_path) {
    if (!log_path.empty()) {
      std::string error;
      EXPECT_TRUE(obs::DecisionLog::Global().Open(log_path, &error)) << error;
    }
    RlMiner miner(&c, o);
    MineResult r = miner.Mine();
    if (!log_path.empty()) obs::DecisionLog::Global().Close();
    return r;
  };

  MineResult plain = run("");
  const std::string log_path = LogPath("rl_train");
  MineResult armed = run(log_path);

  ASSERT_EQ(plain.rules.size(), armed.rules.size());
  for (size_t i = 0; i < plain.rules.size(); ++i) {
    EXPECT_EQ(plain.rules[i].rule, armed.rules[i].rule) << "rule " << i;
    EXPECT_EQ(plain.rules[i].provenance, armed.rules[i].provenance);
    EXPECT_EQ(plain.rules[i].stats.utility, armed.rules[i].stats.utility);
  }

  obs::DecisionLogContents log = obs::ReadDecisionLogFile(log_path);
  ASSERT_TRUE(log.ok()) << log.error;
  size_t steps = 0, trains = 0, emits = 0, inference_steps = 0;
  for (const obs::DecisionEvent& e : log.events) {
    if (e.type == obs::DecisionEventType::kRlStep) {
      ++steps;
      if (e.flags & obs::kRlStepInference) ++inference_steps;
      EXPECT_GE(e.episode, 1u);
    } else if (e.type == obs::DecisionEventType::kRlTrain) {
      ++trains;
      EXPECT_GE(e.step, 1u);
      EXPECT_LE(e.step, o.train_steps);
    } else if (e.type == obs::DecisionEventType::kEmit) {
      ++emits;
    }
  }
  EXPECT_GE(steps, o.train_steps);  // training steps plus the inference walk
  EXPECT_GT(trains, 0u);
  EXPECT_GT(inference_steps, 0u);
  EXPECT_GT(emits, 0u);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace erminer
