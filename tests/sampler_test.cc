#include "data/sampler.h"

#include <set>

#include <gtest/gtest.h>

namespace erminer {
namespace {

StringTable Numbered(size_t n) {
  StringTable t;
  t.schema = Schema::FromNames({"id"});
  for (size_t i = 0; i < n; ++i) t.rows.push_back({std::to_string(i)});
  return t;
}

TEST(SamplerTest, SampleRowsDistinct) {
  Rng rng(5);
  StringTable s = SampleRows(Numbered(50), 20, &rng);
  EXPECT_EQ(s.num_rows(), 20u);
  std::set<std::string> uniq;
  for (const auto& r : s.rows) uniq.insert(r[0]);
  EXPECT_EQ(uniq.size(), 20u);
}

TEST(SamplerTest, SampleRowsClampsToSize) {
  Rng rng(5);
  EXPECT_EQ(SampleRows(Numbered(5), 99, &rng).num_rows(), 5u);
}

TEST(SamplerTest, SplitRowsIsDisjointPartition) {
  Rng rng(7);
  auto [a, b] = SplitRows(Numbered(30), 10, &rng);
  EXPECT_EQ(a.num_rows(), 10u);
  EXPECT_EQ(b.num_rows(), 20u);
  std::set<std::string> uniq;
  for (const auto& r : a.rows) uniq.insert(r[0]);
  for (const auto& r : b.rows) uniq.insert(r[0]);
  EXPECT_EQ(uniq.size(), 30u);
}

TEST(SamplerTest, DuplicateRateZeroDrawsFromOthers) {
  Rng rng(9);
  StringTable master = Numbered(10);
  StringTable other;
  other.schema = master.schema;
  other.rows = {{"x"}, {"y"}};
  StringTable out = SampleWithDuplicateRate(master, other, 40, 0.0, &rng);
  for (const auto& r : out.rows) {
    EXPECT_TRUE(r[0] == "x" || r[0] == "y");
  }
}

TEST(SamplerTest, DuplicateRateHundredDrawsFromMaster) {
  Rng rng(11);
  StringTable master;
  master.schema = Schema::FromNames({"id"});
  master.rows = {{"m"}};
  StringTable out =
      SampleWithDuplicateRate(master, Numbered(5), 25, 100.0, &rng);
  for (const auto& r : out.rows) EXPECT_EQ(r[0], "m");
}

TEST(SamplerTest, DuplicateRateMixesApproximately) {
  Rng rng(13);
  StringTable master;
  master.schema = Schema::FromNames({"id"});
  master.rows = {{"m"}};
  StringTable other;
  other.schema = master.schema;
  other.rows = {{"o"}};
  StringTable out = SampleWithDuplicateRate(master, other, 4000, 30.0, &rng);
  size_t from_master = 0;
  for (const auto& r : out.rows) from_master += (r[0] == "m");
  EXPECT_NEAR(static_cast<double>(from_master) / 4000.0, 0.3, 0.04);
}

}  // namespace
}  // namespace erminer
