#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(WeightedPrfTest, PerfectPrediction) {
  std::vector<ValueCode> truth = {0, 1, 0, 2};
  auto r = WeightedPrf(truth, truth);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_EQ(r.num_rows, 4u);
  EXPECT_EQ(r.num_predicted, 4u);
}

TEST(WeightedPrfTest, NoPredictionsGiveZero) {
  std::vector<ValueCode> truth = {0, 1};
  std::vector<ValueCode> pred = {kNullCode, kNullCode};
  auto r = WeightedPrf(truth, pred);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_EQ(r.num_predicted, 0u);
}

TEST(WeightedPrfTest, HandComputedMixedCase) {
  // truth: class0 x2, class1 x2. predictions: row0->0 (TP), row1->1 (FP on
  // class1? no: truth row1 is 0, predicted 1 -> FP for class1, FN for 0),
  // row2->1 (TP), row3 none.
  std::vector<ValueCode> truth = {0, 0, 1, 1};
  std::vector<ValueCode> pred = {0, 1, 1, kNullCode};
  auto r = WeightedPrf(truth, pred);
  // class0: support 2, tp 1, fp 0 -> P=1, R=0.5, F=2/3.
  // class1: support 2, tp 1, fp 1 -> P=0.5, R=0.5, F=0.5.
  EXPECT_DOUBLE_EQ(r.precision, (2 * 1.0 + 2 * 0.5) / 4);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
  EXPECT_DOUBLE_EQ(r.f1, (2 * (2.0 / 3.0) + 2 * 0.5) / 4);
}

TEST(WeightedPrfTest, NullTruthRowsSkipped) {
  std::vector<ValueCode> truth = {kNullCode, 0};
  std::vector<ValueCode> pred = {0, 0};
  auto r = WeightedPrf(truth, pred);
  EXPECT_EQ(r.num_rows, 1u);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
}

TEST(WeightedPrfTest, RowMaskRestrictsEvaluation) {
  std::vector<ValueCode> truth = {0, 0, 1};
  std::vector<ValueCode> pred = {0, 1, 1};
  std::vector<uint8_t> mask = {1, 0, 1};
  auto r = WeightedPrf(truth, pred, &mask);
  EXPECT_EQ(r.num_rows, 2u);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(WeightedPrfTest, SpuriousPredictionClassDoesNotCrash) {
  // Predicting a class that never appears in truth.
  std::vector<ValueCode> truth = {0, 0};
  std::vector<ValueCode> pred = {7, 7};
  auto r = WeightedPrf(truth, pred);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
}

TEST(WeightedPrfTest, WeightingFavorsLargeClasses) {
  // class0: 9 rows all correct; class1: 1 row wrong.
  std::vector<ValueCode> truth(10, 0);
  truth[9] = 1;
  std::vector<ValueCode> pred(10, 0);
  auto r = WeightedPrf(truth, pred);
  EXPECT_NEAR(r.recall, 0.9, 1e-12);
  // class0 precision = 9/10 (one FP), weighted by 9; class1 precision 0.
  EXPECT_NEAR(r.precision, 0.9 * 0.9, 1e-12);
}

}  // namespace
}  // namespace erminer
