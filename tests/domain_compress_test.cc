#include "core/domain_compress.h"

#include <set>

#include <gtest/gtest.h>

#include "data/schema_match.h"

namespace erminer {
namespace {

/// Corpus whose attr 0 has controlled value frequencies.
Corpus FreqCorpus(const std::vector<std::pair<std::string, int>>& freqs) {
  StringTable in;
  in.schema = Schema::FromNames({"A", "Y"});
  for (const auto& [v, n] : freqs) {
    for (int i = 0; i < n; ++i) in.rows.push_back({v, "y"});
  }
  StringTable ms;
  ms.schema = Schema::FromNames({"A", "Y"});
  ms.rows = {{"whatever", "y"}};
  SchemaMatch m(2);
  m.AddPair(0, 0);
  return Corpus::Build(in, ms, m, 1, 1).ValueOrDie();
}

TEST(DomainCompressTest, FrequencyPruningDropsRareValues) {
  Corpus c = FreqCorpus({{"hot", 50}, {"warm", 10}, {"cold", 2}});
  DomainCompressOptions opts;
  opts.min_frequency = 10;
  auto items = CompressDomain(c, 0, opts);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].label, "hot");  // most frequent first
  EXPECT_EQ(items[1].label, "warm");
}

TEST(DomainCompressTest, NoPruningKeepsAll) {
  Corpus c = FreqCorpus({{"a", 3}, {"b", 2}, {"c", 1}});
  auto items = CompressDomain(c, 0, {});
  EXPECT_EQ(items.size(), 3u);
  for (const auto& it : items) EXPECT_EQ(it.values.size(), 1u);
}

TEST(DomainCompressTest, PrefixMergeRespectsMaxClasses) {
  std::vector<std::pair<std::string, int>> freqs;
  for (int i = 0; i < 30; ++i) {
    freqs.push_back({"ax" + std::to_string(i), 5});
    freqs.push_back({"bx" + std::to_string(i), 5});
  }
  Corpus c = FreqCorpus(freqs);
  DomainCompressOptions opts;
  opts.max_classes = 4;
  opts.prefix_merge = true;
  auto items = CompressDomain(c, 0, opts);
  EXPECT_LE(items.size(), 4u);
  // All 60 codes remain reachable through some class.
  std::set<ValueCode> covered;
  for (const auto& it : items) covered.insert(it.values.begin(),
                                              it.values.end());
  EXPECT_EQ(covered.size(), 60u);
  // Merged classes are labelled with a prefix star.
  bool has_star = false;
  for (const auto& it : items) has_star |= it.label.ends_with("*");
  EXPECT_TRUE(has_star);
}

TEST(DomainCompressTest, NoMergeTruncatesToMostFrequent) {
  std::vector<std::pair<std::string, int>> freqs;
  for (int i = 0; i < 10; ++i) freqs.push_back({"v" + std::to_string(i), 10 - i});
  Corpus c = FreqCorpus(freqs);
  DomainCompressOptions opts;
  opts.max_classes = 3;
  opts.prefix_merge = false;
  auto items = CompressDomain(c, 0, opts);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].label, "v0");
  EXPECT_EQ(items[1].label, "v1");
  EXPECT_EQ(items[2].label, "v2");
}

TEST(DomainCompressTest, ClassesArePairwiseDisjoint) {
  std::vector<std::pair<std::string, int>> freqs;
  for (int i = 0; i < 40; ++i) freqs.push_back({"p" + std::to_string(i), 3});
  Corpus c = FreqCorpus(freqs);
  DomainCompressOptions opts;
  opts.max_classes = 5;
  auto items = CompressDomain(c, 0, opts);
  std::set<ValueCode> seen;
  for (const auto& it : items) {
    for (ValueCode v : it.values) {
      EXPECT_TRUE(seen.insert(v).second) << "code in two classes";
    }
  }
}

TEST(DomainCompressTest, NullsNeverBecomeCandidates) {
  Corpus c = FreqCorpus({{"a", 5}});
  // Inject nulls by building a corpus whose column contains empty strings:
  StringTable in;
  in.schema = Schema::FromNames({"A", "Y"});
  in.rows = {{"", "y"}, {"", "y"}, {"a", "y"}};
  StringTable ms;
  ms.schema = Schema::FromNames({"A", "Y"});
  ms.rows = {{"a", "y"}};
  SchemaMatch m(2);
  m.AddPair(0, 0);
  Corpus c2 = Corpus::Build(in, ms, m, 1, 1).ValueOrDie();
  auto items = CompressDomain(c2, 0, {});
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].label, "a");
}

}  // namespace
}  // namespace erminer
