// The sampling profiler's two contracts: (1) samples land where the CPU
// time actually goes, attributed to the innermost open ERMINER_SPAN; and
// (2) arming the profiler changes nothing about the mining results — it is
// strictly read-only with respect to miner state, at every thread count.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/enu_miner.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace erminer::obs {

// External linkage on purpose: dladdr resolves only dynamic symbols, and an
// anonymous-namespace function would render as "obs_profiler_test+0x..."
// (the documented fallback) instead of by name. `noipa` rather than just
// `noinline`: at -O3 GCC otherwise emits a local constprop/isra clone for
// the constant-argument call sites, and the clone — not the exported
// symbol — is what the samples land in, so dladdr falls back again.
__attribute__((noipa)) uint64_t ProfilerTestHotSpin(uint64_t iters) {
  volatile uint64_t acc = 0;
  for (uint64_t i = 0; i < iters; ++i) acc += i * 2654435761ull;
  return acc;
}

namespace {

using erminer::testing::SeededCorpusCache;

TEST(ParseProfileOutSpecTest, PlainPath) {
  int hz = 99;
  EXPECT_EQ(ParseProfileOutSpec("prof.collapsed", &hz), "prof.collapsed");
  EXPECT_EQ(hz, 99);  // untouched without a rate suffix
}

TEST(ParseProfileOutSpecTest, PathWithRate) {
  int hz = 99;
  EXPECT_EQ(ParseProfileOutSpec("out/prof.collapsed:199", &hz),
            "out/prof.collapsed");
  EXPECT_EQ(hz, 199);
}

TEST(ParseProfileOutSpecTest, ColonInPathIsNotARate) {
  int hz = 99;
  EXPECT_EQ(ParseProfileOutSpec("dir:name/prof.txt", &hz),
            "dir:name/prof.txt");
  EXPECT_EQ(hz, 99);
  EXPECT_EQ(ParseProfileOutSpec("prof:1a", &hz), "prof:1a");
  EXPECT_EQ(hz, 99);
}

TEST(ParseProfileOutSpecTest, TrailingColonKept) {
  int hz = 99;
  EXPECT_EQ(ParseProfileOutSpec("prof:", &hz), "prof:");
  EXPECT_EQ(hz, 99);
}

TEST(ParseProfileOutSpecTest, RateClamped) {
  int hz = 99;
  EXPECT_EQ(ParseProfileOutSpec("p:99999", &hz), "p");
  EXPECT_EQ(hz, 1000);
}

/// Sums the counts of collapsed lines whose root frame is `span`, and the
/// grand total, from "root;frame;... count" text.
void CountByRoot(const std::string& collapsed, const std::string& span,
                 uint64_t* matching, uint64_t* total) {
  *matching = 0;
  *total = 0;
  size_t pos = 0;
  while (pos < collapsed.size()) {
    size_t eol = collapsed.find('\n', pos);
    if (eol == std::string::npos) eol = collapsed.size();
    const std::string line = collapsed.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const uint64_t count =
        std::strtoull(line.c_str() + space + 1, nullptr, 10);
    *total += count;
    if (line.rfind(span + ";", 0) == 0) *matching += count;
  }
}

TEST(ProfilerTest, HotSpanDominatesSamples) {
  Profiler& profiler = Profiler::Global();
  ProfilerOptions opts;
  opts.hz = 500;  // dense sampling keeps the test short
  std::string error;
  ASSERT_TRUE(profiler.Start(opts, &error)) << error;
  {
    ERMINER_SPAN("test/hot_loop");
    // Burn ~400ms of CPU; ITIMER_PROF ticks on CPU time, so this yields
    // on the order of 200 samples regardless of machine load.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
    while (std::chrono::steady_clock::now() < deadline) {
      ProfilerTestHotSpin(100000);
    }
  }
  profiler.Stop();

  EXPECT_GT(profiler.num_samples(), 20u);
  const std::string collapsed = profiler.CollapsedStacks();
  uint64_t hot = 0;
  uint64_t total = 0;
  CountByRoot(collapsed, "test/hot_loop", &hot, &total);
  ASSERT_GT(total, 0u);
  // The spin owns nearly all CPU; anything above a majority proves both the
  // sampling and the span attribution without flaking on slow machines.
  EXPECT_GT(2 * hot, total) << collapsed;
#if !defined(__SANITIZE_THREAD__)
  // Under TSan the spin's cycles are spent inside libtsan's instrumentation
  // interceptors, so the hot frame symbolizes as the TSan runtime instead
  // of the function; span attribution (above) is unaffected.
  EXPECT_NE(collapsed.find("ProfilerTestHotSpin"), std::string::npos)
      << collapsed;
#endif
}

TEST(ProfilerTest, StartWhileRunningFailsAndStopIsIdempotent) {
  Profiler& profiler = Profiler::Global();
  ProfilerOptions opts;
  std::string error;
  ASSERT_TRUE(profiler.Start(opts, &error)) << error;
  EXPECT_FALSE(profiler.Start(opts, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(profiler.hz(), 99);
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.hz(), 0);
  profiler.Stop();  // second Stop is a no-op
}

uint64_t RegistryCounter(const std::string& name) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  auto it = snap.counters.find(name);
  return it != snap.counters.end() ? it->second : 0;
}

TEST(ProfilerTest, CountersReachTheRegistry) {
  const uint64_t before = RegistryCounter("profiler/samples");
  Profiler& profiler = Profiler::Global();
  ProfilerOptions opts;
  opts.hz = 500;
  std::string error;
  ASSERT_TRUE(profiler.Start(opts, &error)) << error;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    ProfilerTestHotSpin(100000);
  }
  profiler.Stop();
  EXPECT_GT(RegistryCounter("profiler/samples"), before);
}

/// Mines with EnuMinerH3 and returns the full ranked rule list.
MineResult MineNursery(const Corpus& corpus) {
  MinerOptions o;
  o.k = 15;
  o.support_threshold = 30;
  o.max_nodes = 100'000;
  return EnuMineH3(corpus, o);
}

void ExpectSameRules(const MineResult& a, const MineResult& b) {
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].rule, b.rules[i].rule) << "rule " << i;
    EXPECT_EQ(a.rules[i].stats.support, b.rules[i].stats.support);
    EXPECT_EQ(a.rules[i].stats.certainty, b.rules[i].stats.certainty);
    EXPECT_EQ(a.rules[i].stats.quality, b.rules[i].stats.quality);
  }
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.rule_evaluations, b.rule_evaluations);
}

TEST(ProfilerTest, RulesBitIdenticalWithProfilerArmed) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("nursery", 1200, 400, 77);
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  const MineResult baseline = MineNursery(corpus);
  ASSERT_FALSE(baseline.rules.empty());

  for (long threads : {1L, 2L}) {
    SetGlobalThreads(threads);
    Profiler& profiler = Profiler::Global();
    ProfilerOptions opts;
    opts.hz = 997;  // high rate: maximize interference if there were any
    std::string error;
    ASSERT_TRUE(profiler.Start(opts, &error)) << error;
    const MineResult profiled = MineNursery(corpus);
    profiler.Stop();
    SetGlobalThreads(1);
    ExpectSameRules(baseline, profiled);
  }
}

}  // namespace
}  // namespace erminer::obs
