// Tests for spec validation, entity generation and error injection.

#include <gtest/gtest.h>

#include "datagen/entity_pool.h"
#include "datagen/error_injector.h"
#include "datagen/spec.h"

namespace erminer {
namespace {

DatasetSpec SmallSpec() {
  DatasetSpec s;
  s.name = "small";
  s.salt = 0xABC;
  s.attributes.push_back({.name = "A", .domain_size = 5, .prefix = "a"});
  s.attributes.push_back({.name = "G", .domain_size = 2, .prefix = "g"});
  s.attributes.push_back({.name = "Y",
                          .domain_size = 4,
                          .prefix = "y",
                          .parents = {0},
                          .strength = 1.0,
                          .gate_attr = 1,
                          .gate_values = {0}});
  s.input_columns = {"A", "G", "Y"};
  s.master_columns = {"A", "Y"};
  s.y_name = "Y";
  return s;
}

TEST(SpecTest, ValidSpecPasses) { EXPECT_TRUE(SmallSpec().Validate().ok()); }

TEST(SpecTest, ParentMustPrecede) {
  DatasetSpec s = SmallSpec();
  s.attributes[0].parents = {2};
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SpecTest, UnknownColumnRejected) {
  DatasetSpec s = SmallSpec();
  s.input_columns.push_back("nope");
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SpecTest, YMustBeInBothColumnLists) {
  DatasetSpec s = SmallSpec();
  s.master_columns = {"A"};
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SpecTest, GateMustPrecedeAndBeNonEmpty) {
  DatasetSpec s = SmallSpec();
  s.attributes[2].gate_values.clear();
  EXPECT_FALSE(s.Validate().ok());
}

TEST(EntityPoolTest, FunctionalMapIsDeterministic) {
  EXPECT_EQ(EntityPool::FunctionalMap(1, 2, {3, 4}, 10, false),
            EntityPool::FunctionalMap(1, 2, {3, 4}, 10, false));
  EXPECT_NE(EntityPool::FunctionalMap(1, 2, {3, 4}, 1000, false),
            EntityPool::FunctionalMap(1, 2, {3, 4}, 1000, true));
  EXPECT_LT(EntityPool::FunctionalMap(9, 9, {1}, 7, false), 7u);
}

TEST(EntityPoolTest, GateControlsWhichMappingApplies) {
  DatasetSpec spec = SmallSpec();
  Rng rng(3);
  EntityPool pool = EntityPool::Generate(spec, 500, &rng).ValueOrDie();
  // For gated-in rows (G == 0), Y follows the primary map of A; gated-out
  // rows follow the alternative map. Both are deterministic in A.
  for (size_t r = 0; r < pool.size(); ++r) {
    size_t a = pool.value_index(r, 0);
    size_t g = pool.value_index(r, 1);
    size_t y = pool.value_index(r, 2);
    size_t expected =
        EntityPool::FunctionalMap(spec.salt, 2, {a}, 4, /*alternative=*/g != 0);
    EXPECT_EQ(y, expected) << "row " << r;
  }
}

TEST(EntityPoolTest, ProjectSelectsColumnsAndRows) {
  Rng rng(5);
  EntityPool pool =
      EntityPool::Generate(SmallSpec(), 20, &rng).ValueOrDie();
  StringTable t = pool.Project({"Y", "A"}, {3, 7});
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema.attribute(0).name, "Y");
  EXPECT_EQ(t.rows[0][1], pool.ValueString(3, 0));
}

TEST(EntityPoolTest, MasterFilterPartitionsRows) {
  DatasetSpec spec = SmallSpec();
  spec.master_filter_attr = 1;
  spec.master_filter_values = {0};
  Rng rng(7);
  EntityPool pool = EntityPool::Generate(spec, 300, &rng).ValueOrDie();
  auto in = pool.MasterEligible();
  auto out = pool.MasterIneligible();
  EXPECT_EQ(in.size() + out.size(), pool.size());
  for (size_t r : in) EXPECT_EQ(pool.value_index(r, 1), 0u);
  for (size_t r : out) EXPECT_NE(pool.value_index(r, 1), 0u);
}

TEST(EntityPoolTest, NoFilterMeansAllEligible) {
  Rng rng(9);
  EntityPool pool = EntityPool::Generate(SmallSpec(), 50, &rng).ValueOrDie();
  EXPECT_EQ(pool.MasterEligible().size(), 50u);
  EXPECT_TRUE(pool.MasterIneligible().empty());
}

TEST(MakeTypoTest, AlwaysChangesValue) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    std::string t = MakeTypo("case3", &rng);
    EXPECT_NE(t, "case3");
    EXPECT_FALSE(t.empty());
  }
  EXPECT_FALSE(MakeTypo("", &rng).empty());
  EXPECT_NE(MakeTypo("a", &rng), "a");
}

TEST(ErrorInjectorTest, RespectsNoiseRateApproximately) {
  StringTable t;
  t.schema = Schema::FromNames({"A", "B"});
  for (int i = 0; i < 3000; ++i) {
    t.rows.push_back({"v" + std::to_string(i % 7), "w"});
  }
  Rng rng(13);
  ErrorInjectorOptions opts;
  opts.noise_rate = 0.2;
  InjectionReport rep = InjectErrors(&t, opts, &rng);
  double rate = static_cast<double>(rep.num_errors) / 6000.0;
  EXPECT_NEAR(rate, 0.2, 0.02);
  EXPECT_EQ(rep.ColumnErrorCount(0) + rep.ColumnErrorCount(1),
            rep.num_errors);
}

TEST(ErrorInjectorTest, DirtyFlagsMatchChangedCells) {
  StringTable t;
  t.schema = Schema::FromNames({"A"});
  for (int i = 0; i < 500; ++i) t.rows.push_back({"v" + std::to_string(i)});
  StringTable clean = t;
  Rng rng(17);
  ErrorInjectorOptions opts;
  opts.noise_rate = 0.3;
  InjectionReport rep = InjectErrors(&t, opts, &rng);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (rep.dirty[0][r]) {
      EXPECT_NE(t.rows[r][0], clean.rows[r][0]);
    } else {
      EXPECT_EQ(t.rows[r][0], clean.rows[r][0]);
    }
  }
}

TEST(ErrorInjectorTest, OnlyColumnRestricts) {
  StringTable t;
  t.schema = Schema::FromNames({"A", "B"});
  for (int i = 0; i < 300; ++i) t.rows.push_back({"a", "b"});
  Rng rng(19);
  ErrorInjectorOptions opts;
  opts.noise_rate = 0.5;
  opts.only_column = 1;
  InjectionReport rep = InjectErrors(&t, opts, &rng);
  EXPECT_EQ(rep.ColumnErrorCount(0), 0u);
  EXPECT_GT(rep.ColumnErrorCount(1), 0u);
}

TEST(ErrorInjectorTest, ZeroNoiseIsIdentity) {
  StringTable t;
  t.schema = Schema::FromNames({"A"});
  t.rows = {{"x"}, {"y"}};
  StringTable clean = t;
  Rng rng(23);
  ErrorInjectorOptions opts;
  opts.noise_rate = 0.0;
  InjectionReport rep = InjectErrors(&t, opts, &rng);
  EXPECT_EQ(rep.num_errors, 0u);
  EXPECT_EQ(t.rows, clean.rows);
}

TEST(ErrorInjectorTest, MissingErrorsProduceNulls) {
  StringTable t;
  t.schema = Schema::FromNames({"A"});
  for (int i = 0; i < 500; ++i) t.rows.push_back({"v"});
  Rng rng(29);
  ErrorInjectorOptions opts;
  opts.noise_rate = 1.0;
  opts.w_missing = 1.0;
  opts.w_typo = 0.0;
  opts.w_swap = 0.0;
  InjectErrors(&t, opts, &rng);
  for (const auto& r : t.rows) EXPECT_EQ(r[0], "");
}

}  // namespace
}  // namespace erminer
