// Unit tests for the deterministic thread pool: lifecycle, chunk
// decomposition edge cases, exception propagation, nesting, and the ordered
// reduction contract (same float result for every thread count).

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/config.h"

namespace erminer {
namespace {

TEST(ThreadPoolTest, ConstructAndDestructAcrossSizes) {
  // Pools must come up and tear down cleanly whether or not they ever ran a
  // batch — including the serial (no worker) and 0 => clamped-to-1 cases.
  for (size_t n : {0u, 1u, 2u, 4u, 8u}) {
    ThreadPool pool(n);
    EXPECT_GE(pool.num_threads(), 1u);
  }
  // And after doing real work.
  ThreadPool pool(4);
  std::atomic<size_t> hits{0};
  pool.ParallelFor(0, 1000, 10,
                   [&](size_t b, size_t e) { hits += e - b; });
  EXPECT_EQ(hits.load(), 1000u);
}

TEST(ThreadPoolTest, NumChunksFor) {
  EXPECT_EQ(ThreadPool::NumChunksFor(0, 16), 0u);
  EXPECT_EQ(ThreadPool::NumChunksFor(1, 16), 1u);
  EXPECT_EQ(ThreadPool::NumChunksFor(16, 16), 1u);
  EXPECT_EQ(ThreadPool::NumChunksFor(17, 16), 2u);
  EXPECT_EQ(ThreadPool::NumChunksFor(32, 16), 2u);
  EXPECT_EQ(ThreadPool::NumChunksFor(5, 0), 5u);  // grain 0 behaves as 1
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 8, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(5, 5, 8, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(7, 3, 8, [&](size_t, size_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
  int acc = pool.ParallelReduce(
      0, 0, 8, 41, [](size_t, size_t) { return 1; },
      [](int* a, int v) { *a += v; });
  EXPECT_EQ(acc, 41);  // init passes through untouched
}

TEST(ThreadPoolTest, RangeSmallerThanGrainIsOneExactChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> chunks;
  std::mutex m;
  pool.ParallelFor(3, 7, 100, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{3, 7}));
}

TEST(ThreadPoolTest, ChunkDecompositionCoversRangeExactly) {
  ThreadPool pool(3);
  // Every element visited exactly once, chunk bounds aligned to the grain.
  std::vector<std::atomic<int>> visits(103);
  pool.ParallelForChunks(10, 113, 16, [&](size_t c, size_t b, size_t e) {
    EXPECT_EQ(b, 10 + c * 16);
    EXPECT_EQ(e, std::min<size_t>(10 + (c + 1) * 16, 113));
    for (size_t i = b; i < e; ++i) ++visits[i - 10];
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t b, size_t) {
                         if (b == 37) throw std::runtime_error("chunk 37");
                       }),
      std::runtime_error);
  // The pool must survive a thrown batch and accept new work.
  std::atomic<size_t> hits{0};
  pool.ParallelFor(0, 50, 5, [&](size_t b, size_t e) { hits += e - b; });
  EXPECT_EQ(hits.load(), 50u);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  ThreadPool pool(4);
  // Multiple chunks throw; the caller must see the lowest chunk index so
  // the surfaced error does not depend on scheduling.
  for (int rep = 0; rep < 20; ++rep) {
    try {
      pool.ParallelFor(0, 64, 1, [&](size_t b, size_t) {
        if (b % 2 == 1) throw std::runtime_error(std::to_string(b));
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "1");
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<size_t> inner_total{0};
  // Outer chunks outnumber executors; if inner calls re-entered the pool
  // and blocked on free workers this would deadlock.
  pool.ParallelFor(0, 32, 1, [&](size_t, size_t) {
    pool.ParallelFor(0, 100, 10,
                     [&](size_t b, size_t e) { inner_total += e - b; });
  });
  EXPECT_EQ(inner_total.load(), 3200u);
}

TEST(ThreadPoolTest, OrderedReductionIsDeterministicAcrossRuns) {
  // Float sum in a deliberately ill-conditioned order: any change in
  // association order changes the result, so bit-equality across 100 runs
  // and across pool sizes proves the ordered-merge contract.
  const size_t n = 10000;
  std::vector<float> xs(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(static_cast<float>(i)) * 1e6f +
            static_cast<float>(i % 7) * 1e-3f;
  }
  auto sum_with = [&](ThreadPool& pool) {
    return pool.ParallelReduce(
        0, n, 64, 0.0f,
        [&](size_t b, size_t e) {
          float s = 0.0f;
          for (size_t i = b; i < e; ++i) s += xs[i];
          return s;
        },
        [](float* acc, float part) { *acc += part; });
  };
  ThreadPool serial(1);
  const float expected = sum_with(serial);
  ThreadPool p2(2), p4(4), p8(8);
  for (int run = 0; run < 100; ++run) {
    EXPECT_EQ(sum_with(p2), expected) << "run " << run;
    EXPECT_EQ(sum_with(p4), expected) << "run " << run;
    EXPECT_EQ(sum_with(p8), expected) << "run " << run;
  }
}

TEST(ThreadPoolTest, ReduceMergesInChunkOrder) {
  ThreadPool pool(4);
  // Concatenation is order-sensitive, so the merged vector being sorted
  // proves chunk-order merging regardless of which thread ran which chunk.
  std::vector<size_t> order = pool.ParallelReduce(
      0, 1000, 7, std::vector<size_t>{},
      [](size_t b, size_t e) {
        std::vector<size_t> part;
        for (size_t i = b; i < e; ++i) part.push_back(i);
        return part;
      },
      [](std::vector<size_t>* acc, const std::vector<size_t>& part) {
        acc->insert(acc->end(), part.begin(), part.end());
      });
  ASSERT_EQ(order.size(), 1000u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ResolveThreadsConvention) {
  EXPECT_GE(ResolveThreads(0), 1u);  // hardware concurrency, at least 1
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(5), 5u);
  EXPECT_EQ(ResolveThreads(-3), 1u);  // clamped
}

TEST(ThreadPoolTest, GlobalPoolFollowsSetting) {
  const long before = GlobalThreadsSetting();
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreadsSetting(), 3);
  EXPECT_EQ(GlobalPool().num_threads(), 3u);
  std::atomic<size_t> hits{0};
  erminer::ParallelFor(0, 100, 10,
                       [&](size_t b, size_t e) { hits += e - b; });
  EXPECT_EQ(hits.load(), 100u);
  SetGlobalThreads(before);
}

TEST(ThreadPoolTest, ConfigureThreadsFromConfig) {
  const long before = GlobalThreadsSetting();
  Config config = Config::Parse("threads = 2\n").ValueOrDie();
  ConfigureThreadsFromConfig(config);
  EXPECT_EQ(GlobalThreadsSetting(), 2);
  // A config without the key leaves the setting alone.
  Config empty = Config::Parse("").ValueOrDie();
  ConfigureThreadsFromConfig(empty);
  EXPECT_EQ(GlobalThreadsSetting(), 2);
  SetGlobalThreads(before);
}

}  // namespace
}  // namespace erminer
