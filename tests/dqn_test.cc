// ReplayBuffer behaviour and DqnAgent: masking invariants and learning a
// tiny deterministic chain MDP.

#include "rl/dqn.h"

#include <sstream>

#include <gtest/gtest.h>

#include "rl/replay_buffer.h"

namespace erminer {
namespace {

TEST(ReplayBufferTest, RingOverwriteKeepsCapacity) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 7; ++i) {
    Transition t;
    t.reward = static_cast<float>(i);
    buf.Add(std::move(t));
  }
  EXPECT_EQ(buf.size(), 3u);
  // Only the newest 3 rewards (4, 5, 6) survive.
  Rng rng(5);
  for (const Transition* t : buf.Sample(50, &rng)) {
    EXPECT_GE(t->reward, 4.0f);
  }
}

TEST(ReplayBufferTest, SampleCoversContents) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 10; ++i) {
    Transition t;
    t.action = i;
    buf.Add(std::move(t));
  }
  Rng rng(7);
  std::vector<bool> seen(10, false);
  for (const Transition* t : buf.Sample(400, &rng)) {
    seen[static_cast<size_t>(t->action)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

DqnOptions SmallDqn() {
  DqnOptions o;
  o.hidden = {16};
  o.batch_size = 8;
  o.min_replay = 8;
  o.replay_capacity = 512;
  o.target_sync_every = 10;
  o.learning_rate = 5e-3f;
  o.gamma = 0.9f;
  o.seed = 23;
  return o;
}

TEST(DqnAgentTest, ActRespectsMask) {
  DqnAgent agent(4, 5, SmallDqn());
  std::vector<uint8_t> mask = {0, 1, 0, 0, 1};
  for (int i = 0; i < 50; ++i) {
    int32_t a = agent.Act({0, 2}, mask, /*epsilon=*/0.7);
    EXPECT_TRUE(a == 1 || a == 4);
  }
}

TEST(DqnAgentTest, GreedyIsDeterministic) {
  DqnAgent agent(4, 5, SmallDqn());
  std::vector<uint8_t> mask(5, 1);
  int32_t a = agent.ActGreedy({1}, mask);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(agent.ActGreedy({1}, mask), a);
}

TEST(DqnAgentTest, QValuesHaveActionDim) {
  DqnAgent agent(3, 4, SmallDqn());
  EXPECT_EQ(agent.QValues({0}).size(), 4u);
}

TEST(DqnAgentTest, TrainStepNoOpUntilMinReplay) {
  DqnAgent agent(3, 4, SmallDqn());
  EXPECT_EQ(agent.TrainStep(), 0.0f);
  EXPECT_EQ(agent.updates_done(), 0u);
}

TEST(DqnAgentTest, LearnsTwoArmedBandit) {
  // One state, two actions; action 1 pays 1.0, action 0 pays 0.0.
  DqnAgent agent(2, 2, SmallDqn());
  std::vector<uint8_t> mask = {1, 1};
  for (int i = 0; i < 300; ++i) {
    Transition t;
    t.state = {0};
    t.action = i % 2;
    t.reward = (t.action == 1) ? 1.0f : 0.0f;
    t.next_state = {0};
    t.next_mask = mask;
    t.done = true;
    agent.Observe(std::move(t));
    agent.TrainStep();
  }
  EXPECT_EQ(agent.ActGreedy({0}, mask), 1);
  auto q = agent.QValues({0});
  EXPECT_NEAR(q[1], 1.0f, 0.2f);
  EXPECT_NEAR(q[0], 0.0f, 0.2f);
}

TEST(DqnAgentTest, BootstrapsThroughChain) {
  // Two-step chain: s0 --a0--> s1 (r=0), s1 --a0--> terminal (r=1).
  // Q(s0, a0) must approach gamma * 1.
  DqnOptions opts = SmallDqn();
  DqnAgent agent(2, 1, opts);
  std::vector<uint8_t> mask = {1};
  for (int i = 0; i < 600; ++i) {
    Transition t1;
    t1.state = {0};
    t1.action = 0;
    t1.reward = 0.0f;
    t1.next_state = {1};
    t1.next_mask = mask;
    t1.done = false;
    agent.Observe(std::move(t1));
    Transition t2;
    t2.state = {1};
    t2.action = 0;
    t2.reward = 1.0f;
    t2.next_state = {1};
    t2.next_mask = mask;
    t2.done = true;
    agent.Observe(std::move(t2));
    agent.TrainStep();
  }
  EXPECT_NEAR(agent.QValues({1})[0], 1.0f, 0.2f);
  EXPECT_NEAR(agent.QValues({0})[0], 0.9f, 0.25f);
}

TEST(DqnAgentTest, MaskedBootstrapIgnoresDisallowedNextActions) {
  // The next state's only allowed action has a low Q; an unmasked bootstrap
  // would chase the (disallowed) high-Q action. We verify via targets: with
  // all next actions masked except one, training converges to r + gamma*Q.
  DqnOptions opts = SmallDqn();
  DqnAgent agent(2, 2, opts);
  // Make next-state action 1 disallowed everywhere.
  std::vector<uint8_t> next_mask = {1, 0};
  std::vector<uint8_t> full = {1, 1};
  for (int i = 0; i < 400; ++i) {
    Transition t;
    t.state = {0};
    t.action = i % 2;
    t.reward = (t.action == 1) ? 1.0f : 0.0f;
    t.next_state = {1};
    t.next_mask = next_mask;
    t.done = true;
    agent.Observe(std::move(t));
    agent.TrainStep();
  }
  EXPECT_EQ(agent.ActGreedy({0}, full), 1);
}

TEST(DqnAgentTest, BatchedForwardMatchesSingleStateBitwise) {
  // One batched forward over stacked feature rows must reproduce each
  // per-state forward exactly — matmul rows are independent dot products,
  // so this is a bitwise contract, not a tolerance.
  DqnAgent agent(6, 5, SmallDqn());
  std::vector<RuleKey> states = {{}, {0}, {1, 3}, {2, 4, 5}, {0, 5}, {1}};
  std::vector<const RuleKey*> ptrs;
  for (const RuleKey& s : states) ptrs.push_back(&s);
  Tensor batched = agent.QValuesBatch(ptrs);
  ASSERT_EQ(batched.rows(), states.size());
  ASSERT_EQ(batched.cols(), 5u);
  for (size_t b = 0; b < states.size(); ++b) {
    std::vector<float> single = agent.QValues(states[b]);
    for (size_t a = 0; a < single.size(); ++a) {
      EXPECT_EQ(batched.at(b, a), single[a]) << "state " << b << " action "
                                             << a;
    }
  }
}

TEST(DqnAgentTest, ActGreedyBatchMatchesActGreedy) {
  DqnAgent agent(6, 5, SmallDqn());
  std::vector<RuleKey> states = {{0}, {1, 3}, {2, 4}, {5}};
  std::vector<std::vector<uint8_t>> masks = {
      {1, 1, 1, 1, 1}, {0, 1, 0, 1, 1}, {1, 0, 0, 0, 1}, {0, 0, 1, 1, 0}};
  std::vector<const RuleKey*> sp;
  std::vector<const std::vector<uint8_t>*> mp;
  for (size_t i = 0; i < states.size(); ++i) {
    sp.push_back(&states[i]);
    mp.push_back(&masks[i]);
  }
  std::vector<int32_t> batched = agent.ActGreedyBatch(sp, mp);
  ASSERT_EQ(batched.size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(batched[i], agent.ActGreedy(states[i], masks[i])) << i;
  }
}

TEST(DqnAgentTest, SaveLoadWeights) {
  DqnAgent a(3, 4, SmallDqn());
  std::stringstream ss;
  ASSERT_TRUE(a.SaveWeights(ss).ok());
  DqnAgent b(3, 4, SmallDqn());
  ASSERT_TRUE(b.LoadWeights(ss).ok());
  EXPECT_EQ(a.QValues({1, 2}), b.QValues({1, 2}));
}

TEST(DqnAgentTest, LoadRejectsDimMismatch) {
  DqnAgent a(3, 4, SmallDqn());
  std::stringstream ss;
  ASSERT_TRUE(a.SaveWeights(ss).ok());
  DqnAgent b(5, 4, SmallDqn());
  EXPECT_FALSE(b.LoadWeights(ss).ok());
}

}  // namespace
}  // namespace erminer
