// Golden determinism tests: fixed seeds must reproduce the same mined
// rules, rule renderings and repair metrics run after run. These protect
// the experiment tables from silent nondeterminism.

#include <gtest/gtest.h>

#include "core/enu_miner.h"
#include "core/rule_io.h"
#include "eval/experiment.h"
#include "test_util.h"

namespace erminer {
namespace {

TEST(GoldenTest, TinyCorpusTopRuleIsStable) {
  Corpus c = erminer::testing::MakeTinyCorpus();
  MinerOptions o;
  o.k = 3;
  o.support_threshold = 2;
  MineResult r = EnuMine(c, o);
  ASSERT_FALSE(r.rules.empty());
  // {(A,A)} with an empty pattern wins: U = (ln 4)^2 * 0.75 ~ 1.44 beats
  // the G=g1 refinement's (ln 3)^2 * (7/9 + 1/3) ~ 1.34 — and then
  // dominates every other {(A,A)}-based rule, so the set is a singleton.
  EXPECT_EQ(r.rules[0].rule.ToString(c), "((A,A)) -> (Y,Y), tp=()");
  EXPECT_EQ(r.rules[0].stats.support, 4);
  EXPECT_EQ(r.rules.size(), 1u);
}

TEST(GoldenTest, EnuMinerIsRunToRunDeterministic) {
  const GeneratedDataset& ds =
      erminer::testing::SeededCorpusCache::Get("covid", 250, 200, 77);
  Corpus c1 = BuildCorpus(ds).ValueOrDie();
  Corpus c2 = BuildCorpus(ds).ValueOrDie();
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 12;
  MineResult a = EnuMine(c1, o);
  MineResult b = EnuMine(c2, o);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].rule, b.rules[i].rule) << i;
    EXPECT_EQ(a.rules[i].stats.support, b.rules[i].stats.support);
  }
  EXPECT_EQ(RulesToText(a.rules, c1), RulesToText(b.rules, c2));
}

TEST(GoldenTest, TrialMetricsAreDeterministic) {
  const GeneratedDataset& ds =
      erminer::testing::SeededCorpusCache::Get("covid", 250, 200, 78);
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 12;
  TrialResult a =
      RunTrial(ds, Method::kEnuMiner, o, DefaultRlOptions(ds)).ValueOrDie();
  TrialResult b =
      RunTrial(ds, Method::kEnuMiner, o, DefaultRlOptions(ds)).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.repair.precision, b.repair.precision);
  EXPECT_DOUBLE_EQ(a.repair.recall, b.repair.recall);
  EXPECT_DOUBLE_EQ(a.repair.f1, b.repair.f1);
}

TEST(GoldenTest, CtaneIsDeterministicDespiteHashOrder) {
  // The CFD lattice iterates unordered_maps internally; the non-redundant
  // top-K selection must still be stable because ties are broken by the
  // stable sort over insertion order, which itself is deterministic given
  // identical inputs and the same binary.
  Corpus c1 = erminer::testing::MakeExactFdCorpus();
  Corpus c2 = erminer::testing::MakeExactFdCorpus();
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 10;
  MineResult a = CfdMine(c1, o);
  MineResult b = CfdMine(c2, o);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].rule, b.rules[i].rule) << i;
  }
}

}  // namespace
}  // namespace erminer
