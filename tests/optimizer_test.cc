// Optimizers must drive simple objectives to their minima, and the MLP +
// Adam combination must fit a small regression problem.

#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/mlp.h"

namespace erminer {
namespace {

TEST(SgdTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, df = 2(x-3).
  Tensor x(1, 1, 0.0f);
  Tensor g(1, 1, 0.0f);
  Sgd opt(0.1f);
  for (int i = 0; i < 200; ++i) {
    g.at(0, 0) = 2 * (x.at(0, 0) - 3.0f);
    opt.Step({&x}, {&g});
  }
  EXPECT_NEAR(x.at(0, 0), 3.0f, 1e-3f);
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x(1, 2, 0.0f);
  Tensor g(1, 2, 0.0f);
  Adam opt(0.05f);
  for (int i = 0; i < 1000; ++i) {
    g.at(0, 0) = 2 * (x.at(0, 0) - 3.0f);
    g.at(0, 1) = 2 * (x.at(0, 1) + 1.5f);
    opt.Step({&x}, {&g});
  }
  EXPECT_NEAR(x.at(0, 0), 3.0f, 1e-2f);
  EXPECT_NEAR(x.at(0, 1), -1.5f, 1e-2f);
}

TEST(AdamTest, HandlesSparseGradientsBetterThanZero) {
  // Smoke: zero gradients leave parameters untouched.
  Tensor x(1, 1, 1.0f);
  Tensor g(1, 1, 0.0f);
  Adam opt(0.1f);
  for (int i = 0; i < 10; ++i) opt.Step({&x}, {&g});
  EXPECT_NEAR(x.at(0, 0), 1.0f, 1e-5f);
}

TEST(AdamTest, FitsXorWithMlp) {
  Rng rng(17);
  Mlp mlp({2, 16, 1}, &rng);
  Adam opt(0.01f);
  Tensor x = Tensor::FromData(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor target = Tensor::FromData(4, 1, {0, 1, 1, 0});
  float loss = 0;
  for (int epoch = 0; epoch < 3000; ++epoch) {
    Tensor out = mlp.Forward(x);
    auto [l, grad] = MseLoss(out, target);
    loss = l;
    mlp.ZeroGrad();
    mlp.Backward(grad);
    opt.Step(mlp.Parameters(), mlp.Gradients());
  }
  EXPECT_LT(loss, 0.02f);
}

}  // namespace
}  // namespace erminer
