// Differential tests for the deterministic-parallelism contract: every
// user-visible artifact — mined rules, supports, certainties, violation
// lists, repaired tables — must be bit-identical between threads=1 and
// threads=4. The corpora are sized above kDefaultGrain so the row loops
// really do split into multiple chunks.

#include <gtest/gtest.h>

#include <vector>

#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "core/repair.h"
#include "core/violations.h"
#include "eval/experiment.h"
#include "rl/rl_miner.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace erminer {
namespace {

using erminer::testing::SeededCorpusCache;

/// Everything downstream of mining that a user can observe.
struct Artifacts {
  MineResult mine;
  ViolationReport violations;
  RepairOutcome repair;
};

Artifacts RunPipelineAt(long threads, const GeneratedDataset& ds,
                        const std::function<MineResult(const Corpus&)>& mine) {
  SetGlobalThreads(threads);
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  Artifacts out;
  out.mine = mine(corpus);
  RuleEvaluator evaluator(&corpus);
  out.violations = DetectViolations(&evaluator, out.mine.rules, {});
  out.repair = ApplyRules(&evaluator, out.mine.rules);
  SetGlobalThreads(1);
  return out;
}

/// EXPECT_EQ on doubles is deliberate: the contract is bit-identity, not
/// tolerance.
void ExpectIdentical(const Artifacts& a, const Artifacts& b) {
  ASSERT_EQ(a.mine.rules.size(), b.mine.rules.size());
  for (size_t i = 0; i < a.mine.rules.size(); ++i) {
    EXPECT_EQ(a.mine.rules[i].rule, b.mine.rules[i].rule) << "rule " << i;
    EXPECT_EQ(a.mine.rules[i].stats.support, b.mine.rules[i].stats.support);
    EXPECT_EQ(a.mine.rules[i].stats.certainty,
              b.mine.rules[i].stats.certainty);
    EXPECT_EQ(a.mine.rules[i].stats.quality, b.mine.rules[i].stats.quality);
    EXPECT_EQ(a.mine.rules[i].stats.utility, b.mine.rules[i].stats.utility);
  }
  EXPECT_EQ(a.mine.nodes_explored, b.mine.nodes_explored);
  EXPECT_EQ(a.mine.rule_evaluations, b.mine.rule_evaluations);

  ASSERT_EQ(a.violations.violations.size(), b.violations.violations.size());
  for (size_t i = 0; i < a.violations.violations.size(); ++i) {
    EXPECT_EQ(a.violations.violations[i].row, b.violations.violations[i].row);
    EXPECT_EQ(a.violations.violations[i].rule_index,
              b.violations.violations[i].rule_index);
    EXPECT_EQ(a.violations.violations[i].current,
              b.violations.violations[i].current);
    EXPECT_EQ(a.violations.violations[i].expected,
              b.violations.violations[i].expected);
  }
  EXPECT_EQ(a.violations.num_flagged_rows, b.violations.num_flagged_rows);
  EXPECT_EQ(a.violations.num_missing_covered,
            b.violations.num_missing_covered);

  EXPECT_EQ(a.repair.prediction, b.repair.prediction);
  EXPECT_EQ(a.repair.num_predictions, b.repair.num_predictions);
  ASSERT_EQ(a.repair.score.size(), b.repair.score.size());
  for (size_t i = 0; i < a.repair.score.size(); ++i) {
    EXPECT_EQ(a.repair.score[i], b.repair.score[i]) << "row " << i;
  }
}

MinerOptions OptionsFor(const GeneratedDataset& ds) {
  MinerOptions o;
  o.k = 20;
  o.support_threshold =
      std::max(10.0, static_cast<double>(ds.input.num_rows()) / 40.0);
  o.max_nodes = 200'000;
  return o;
}

TEST(ParallelDifferentialTest, EnuMinerAdult) {
  const GeneratedDataset& ds = SeededCorpusCache::Get("Adult", 1500, 400, 91);
  auto mine = [&](const Corpus& c) { return EnuMineH3(c, OptionsFor(ds)); };
  Artifacts serial = RunPipelineAt(1, ds, mine);
  Artifacts parallel = RunPipelineAt(4, ds, mine);
  ASSERT_FALSE(serial.mine.rules.empty());
  ExpectIdentical(serial, parallel);
}

TEST(ParallelDifferentialTest, EnuMinerNursery) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("nursery", 1400, 500, 92);
  auto mine = [&](const Corpus& c) { return EnuMineH3(c, OptionsFor(ds)); };
  Artifacts serial = RunPipelineAt(1, ds, mine);
  Artifacts parallel = RunPipelineAt(4, ds, mine);
  ASSERT_FALSE(serial.mine.rules.empty());
  ExpectIdentical(serial, parallel);
}

TEST(ParallelDifferentialTest, CtaneAdult) {
  const GeneratedDataset& ds = SeededCorpusCache::Get("Adult", 1500, 400, 91);
  auto mine = [&](const Corpus& c) { return CfdMine(c, OptionsFor(ds)); };
  Artifacts serial = RunPipelineAt(1, ds, mine);
  Artifacts parallel = RunPipelineAt(4, ds, mine);
  ExpectIdentical(serial, parallel);
}

TEST(ParallelDifferentialTest, CtaneNursery) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("nursery", 1400, 500, 92);
  auto mine = [&](const Corpus& c) { return CfdMine(c, OptionsFor(ds)); };
  Artifacts serial = RunPipelineAt(1, ds, mine);
  Artifacts parallel = RunPipelineAt(4, ds, mine);
  ExpectIdentical(serial, parallel);
}

TEST(ParallelDifferentialTest, RlMinerInferenceAdult) {
  // Inference with freshly seed-initialized (fixed) weights and a greedy+
  // small-epsilon walk. The epsilon draws consume the same RNG sequence on
  // both sides only if every Q forward pass is bit-identical, so this
  // exercises the NN kernels' ordered reductions end to end.
  const GeneratedDataset& ds = SeededCorpusCache::Get("Adult", 1500, 400, 91);
  RlMinerOptions rl;
  rl.base = OptionsFor(ds);
  rl.seed = 123;
  rl.max_inference_steps = 200;
  auto mine = [&](const Corpus& c) {
    RlMiner miner(&c, rl);
    return miner.Infer();
  };
  Artifacts serial = RunPipelineAt(1, ds, mine);
  Artifacts parallel = RunPipelineAt(4, ds, mine);
  ExpectIdentical(serial, parallel);
}

}  // namespace
}  // namespace erminer
