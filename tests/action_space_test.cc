// ActionSpace dimension checks against Eqs. 7-12 and encode/decode
// round-trips.

#include "core/action_space.h"

#include <gtest/gtest.h>

#include "core/mask.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

TEST(ActionSpaceTest, DimsFollowEquations) {
  Corpus c = MakeTinyCorpus();
  ActionSpace s = ActionSpace::Build(c, {});
  // Eq. 7: dim(s_l) = sum_{A in R\Y} |M(A)| = |M(A)| = 1 (G unmatched).
  EXPECT_EQ(s.lhs_dim(), 1u);
  // Eq. 8: dim(s_p) = |dom(A)| + |dom(G)| = 3 + 2 (input-side values only).
  EXPECT_EQ(s.pattern_dim(), 5u);
  EXPECT_EQ(s.state_dim(), 6u);
  // Eq. 12: one stop action.
  EXPECT_EQ(s.num_actions(), 7u);
  EXPECT_EQ(s.stop_action(), 6);
}

TEST(ActionSpaceTest, ActionClassification) {
  Corpus c = MakeTinyCorpus();
  ActionSpace s = ActionSpace::Build(c, {});
  EXPECT_TRUE(s.IsLhsAction(0));
  EXPECT_FALSE(s.IsLhsAction(1));
  EXPECT_TRUE(s.IsPatternAction(1));
  EXPECT_TRUE(s.IsPatternAction(5));
  EXPECT_FALSE(s.IsPatternAction(6));
  EXPECT_TRUE(s.IsStopAction(6));
  EXPECT_FALSE(s.IsStopAction(0));
}

TEST(ActionSpaceTest, YAttributeExcluded) {
  Corpus c = MakeTinyCorpus();
  ActionSpace s = ActionSpace::Build(c, {});
  for (size_t i = 0; i < s.lhs_dim(); ++i) {
    EXPECT_NE(s.lhs_action(static_cast<int32_t>(i)).a, c.y_input());
  }
  for (size_t i = s.lhs_dim(); i < s.state_dim(); ++i) {
    EXPECT_NE(s.pattern_item(static_cast<int32_t>(i)).attr, c.y_input());
  }
}

TEST(ActionSpaceTest, PerAttrLookupsAlign) {
  Corpus c = MakeTinyCorpus();
  ActionSpace s = ActionSpace::Build(c, {});
  EXPECT_EQ(s.LhsActionsOfAttr(0).size(), 1u);
  EXPECT_TRUE(s.LhsActionsOfAttr(1).empty());   // G unmatched
  EXPECT_TRUE(s.LhsActionsOfAttr(2).empty());   // Y excluded
  EXPECT_EQ(s.PatternActionsOfAttr(0).size(), 3u);
  EXPECT_EQ(s.PatternActionsOfAttr(1).size(), 2u);
  EXPECT_TRUE(s.PatternActionsOfAttr(2).empty());
  EXPECT_TRUE(s.PatternActionsOfAttr(-1).empty());
  for (int32_t i : s.PatternActionsOfAttr(1)) {
    EXPECT_EQ(s.pattern_item(i).attr, 1);
  }
}

TEST(ActionSpaceTest, DecodeBuildsExpectedRule) {
  Corpus c = MakeTinyCorpus();
  ActionSpace s = ActionSpace::Build(c, {});
  RuleKey key = {0, s.PatternActionsOfAttr(1)[0]};
  EditingRule r = s.Decode(key);
  EXPECT_EQ(r.lhs, (LhsPairs{{0, 0}}));
  EXPECT_EQ(r.pattern.size(), 1u);
  EXPECT_EQ(r.pattern.items()[0].attr, 1);
  EXPECT_EQ(r.y_input, 2);
  EXPECT_EQ(r.y_master, 1);
}

TEST(ActionSpaceTest, EncodeDecodeRoundTrip) {
  Corpus c = MakeTinyCorpus();
  ActionSpace s = ActionSpace::Build(c, {});
  for (int32_t a = 0; a < s.stop_action(); ++a) {
    for (int32_t b = a + 1; b < s.stop_action(); ++b) {
      RuleKey key = {a, b};
      std::vector<uint8_t> mask = ComputeMask(s, {a}, {});
      if (!mask[static_cast<size_t>(b)]) continue;  // invalid combination
      EditingRule rule = s.Decode(key);
      auto encoded = s.Encode(rule);
      ASSERT_TRUE(encoded.ok());
      EXPECT_EQ(*encoded, key);
    }
  }
}

TEST(ActionSpaceTest, EncodeUnknownRuleFails) {
  Corpus c = MakeTinyCorpus();
  ActionSpace s = ActionSpace::Build(c, {});
  EditingRule r;
  r.y_input = 2;
  r.y_master = 1;
  r.AddLhs(1, 0);  // G is unmatched: no such action
  EXPECT_FALSE(s.Encode(r).ok());

  EditingRule r2;
  r2.y_input = 2;
  r2.y_master = 1;
  r2.pattern.Add({0, {9999}, "missing"});
  EXPECT_FALSE(s.Encode(r2).ok());
}

TEST(ActionSpaceTest, SupportThresholdShrinksPatternDim) {
  Corpus c = MakeTinyCorpus();
  ActionSpaceOptions opts;
  opts.support_threshold = 3;  // only a1 (x3) and g1 (x4) qualify
  ActionSpace s = ActionSpace::Build(c, opts);
  EXPECT_EQ(s.pattern_dim(), 2u);
}

TEST(KeyWithTest, InsertsSorted) {
  EXPECT_EQ(KeyWith({1, 5}, 3), (RuleKey{1, 3, 5}));
  EXPECT_EQ(KeyWith({}, 2), (RuleKey{2}));
  EXPECT_EQ(KeyWith({2}, 7), (RuleKey{2, 7}));
}

}  // namespace
}  // namespace erminer
