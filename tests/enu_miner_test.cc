#include "core/enu_miner.h"

#include <gtest/gtest.h>

#include "core/repair.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;
using erminer::testing::MakeTinyCorpus;

MinerOptions SmallOptions(double eta = 2, size_t k = 10) {
  MinerOptions o;
  o.k = k;
  o.support_threshold = eta;
  return o;
}

TEST(EnuMinerTest, FindsThePlantedExactRule) {
  Corpus c = MakeExactFdCorpus();
  MineResult r = EnuMine(c, SmallOptions(20));
  ASSERT_FALSE(r.rules.empty());
  // The best rule must be {(A,A),(B,B)} with certainty 1 and full support.
  const ScoredRule& best = r.rules[0];
  EXPECT_EQ(best.rule.lhs, (LhsPairs{{0, 0}, {1, 1}}));
  EXPECT_DOUBLE_EQ(best.stats.certainty, 1.0);
  EXPECT_DOUBLE_EQ(best.stats.quality, 1.0);
}

TEST(EnuMinerTest, OutputIsNonRedundantAndWithinK) {
  Corpus c = MakeExactFdCorpus();
  MineResult r = EnuMine(c, SmallOptions(5, 4));
  EXPECT_LE(r.rules.size(), 4u);
  EXPECT_TRUE(IsNonRedundant(r.rules));
}

TEST(EnuMinerTest, AllRulesMeetSupportThreshold) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o = SmallOptions(30);
  MineResult r = EnuMine(c, o);
  for (const auto& sr : r.rules) {
    EXPECT_GE(static_cast<double>(sr.stats.support), o.support_threshold);
    EXPECT_FALSE(sr.rule.lhs.empty());
  }
}

TEST(EnuMinerTest, UtilityDescendingOrder) {
  Corpus c = MakeExactFdCorpus();
  MineResult r = EnuMine(c, SmallOptions(5));
  for (size_t i = 1; i < r.rules.size(); ++i) {
    EXPECT_GE(r.rules[i - 1].stats.utility, r.rules[i].stats.utility);
  }
}

TEST(EnuMinerTest, HighThresholdPrunesEverything) {
  Corpus c = MakeTinyCorpus();
  MineResult r = EnuMine(c, SmallOptions(1000));
  EXPECT_TRUE(r.rules.empty());
  // Only the root's LHS children are generated (pattern values are pruned
  // by frequency) and all fail the support check, so nothing expands.
  EXPECT_LE(r.nodes_explored, 1u);
}

TEST(EnuMinerTest, H3LimitsRuleLengths) {
  Corpus c = MakeExactFdCorpus();
  MineResult r = EnuMineH3(c, SmallOptions(5));
  for (const auto& sr : r.rules) {
    EXPECT_LE(sr.rule.LhsSize(), 3u);
    EXPECT_LE(sr.rule.PatternSize(), 3u);
  }
}

TEST(EnuMinerTest, H3ExploresNoMoreNodesThanFull) {
  Corpus c = MakeExactFdCorpus();
  MineResult full = EnuMine(c, SmallOptions(3));
  MineResult h3 = EnuMineH3(c, SmallOptions(3));
  EXPECT_LE(h3.nodes_explored, full.nodes_explored);
}

TEST(EnuMinerTest, MaxNodesCapsTheSearch) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o = SmallOptions(2);
  o.max_nodes = 10;
  MineResult r = EnuMine(c, o);
  EXPECT_LE(r.nodes_explored, 10u + o.max_classes_per_attr +
                                  c.input().num_cols());
}

TEST(EnuMinerTest, RepairWithMinedRulesIsAccurate) {
  // On the exactly-solvable corpus, applying the mined rules reproduces Y.
  Corpus c = MakeExactFdCorpus();
  MineResult r = EnuMine(c, SmallOptions(20, 5));
  RuleEvaluator ev(&c);
  RepairOutcome out = ApplyRules(&ev, r.rules);
  size_t correct = 0, predicted = 0;
  for (size_t row = 0; row < c.input().num_rows(); ++row) {
    if (out.prediction[row] == kNullCode) continue;
    ++predicted;
    correct += (out.prediction[row] == c.input().at(row, 3));
  }
  EXPECT_GT(predicted, c.input().num_rows() / 2);
  EXPECT_EQ(correct, predicted);  // exact FD => perfect precision
}

}  // namespace
}  // namespace erminer
