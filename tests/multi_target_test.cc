#include "core/multi_target.h"

#include <gtest/gtest.h>

#include "core/enu_miner.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "test_util.h"

namespace erminer {
namespace {

TEST(MultiTargetTest, CandidateTargetsExcludeUnmatchedAndConstant) {
  StringTable in;
  in.schema = Schema::FromNames({"A", "Const", "Unmatched", "Y"});
  in.rows = {{"a1", "k", "u1", "y1"}, {"a2", "k", "u2", "y2"}};
  StringTable ms;
  ms.schema = Schema::FromNames({"A", "Const", "Y"});
  ms.rows = {{"a1", "k", "y1"}};
  SchemaMatch match = SchemaMatch::ByName(in.schema, ms.schema);
  Corpus c = Corpus::Build(in, ms, match, 3, 2).ValueOrDie();
  auto targets = CandidateTargets(c);
  // A and Y qualify; Const has 1 distinct value; Unmatched has no pair.
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].first, 0);
  EXPECT_EQ(targets[1].first, 3);
}

TEST(MultiTargetTest, MinesEveryMatchedAttribute) {
  GenOptions g;
  g.input_size = 400;
  g.master_size = 300;
  g.seed = 3;
  GeneratedDataset ds = MakeCovid(g).ValueOrDie();
  MinerFn miner = [](const Corpus& corpus) {
    MinerOptions o;
    o.k = 5;
    o.support_threshold = 20;
    return EnuMine(corpus, o);
  };
  auto results =
      MineAllTargets(ds.input, ds.master, ds.match, miner).ValueOrDie();
  // Covid has 6 matched pairs; patient_id is key-like but has >1 distinct.
  EXPECT_GE(results.size(), 5u);
  bool infection_case_covered = false;
  for (const auto& tr : results) {
    EXPECT_GE(tr.y_input, 0);
    EXPECT_GE(tr.y_master, 0);
    EXPECT_TRUE(IsNonRedundant(tr.mine.rules)) << tr.y_name;
    if (tr.y_name == "infection_case") {
      infection_case_covered = true;
      EXPECT_FALSE(tr.mine.rules.empty());
    }
  }
  EXPECT_TRUE(infection_case_covered);
}

TEST(MultiTargetTest, NoMatchedPairsFails) {
  StringTable in;
  in.schema = Schema::FromNames({"A"});
  in.rows = {{"x"}};
  StringTable ms;
  ms.schema = Schema::FromNames({"B"});
  ms.rows = {{"x"}};
  SchemaMatch match(1);
  EXPECT_FALSE(MineAllTargets(in, ms, match, [](const Corpus&) {
                 return MineResult{};
               }).ok());
}

}  // namespace
}  // namespace erminer
