#include "rl/prioritized_replay.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(SumTreeTest, TotalTracksUpdates) {
  SumTree tree(4);
  EXPECT_DOUBLE_EQ(tree.Total(), 0.0);
  tree.Set(0, 1.0);
  tree.Set(2, 3.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 4.0);
  tree.Set(0, 0.5);
  EXPECT_DOUBLE_EQ(tree.Total(), 3.5);
  EXPECT_DOUBLE_EQ(tree.Get(2), 3.0);
}

TEST(SumTreeTest, FindPrefixSelectsProportionally) {
  SumTree tree(4);
  tree.Set(0, 1.0);
  tree.Set(1, 0.0);
  tree.Set(2, 2.0);
  tree.Set(3, 1.0);
  // Count hits over a deterministic prefix sweep.
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 400; ++i) {
    double prefix = tree.Total() * (i + 0.5) / 400.0;
    hits[tree.FindPrefix(prefix)] += 1;
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(hits[0], 100, 3);
  EXPECT_NEAR(hits[2], 200, 3);
  EXPECT_NEAR(hits[3], 100, 3);
}

TEST(SumTreeTest, CapacityOne) {
  SumTree tree(1);
  tree.Set(0, 5.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 5.0);
  EXPECT_EQ(tree.FindPrefix(2.0), 0u);
}

TEST(SumTreeTest, NonPowerOfTwoCapacity) {
  SumTree tree(5);
  for (size_t i = 0; i < 5; ++i) tree.Set(i, 1.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 5.0);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 500; ++i) {
    hits[tree.FindPrefix(5.0 * (i + 0.5) / 500.0)] += 1;
  }
  for (int h : hits) EXPECT_NEAR(h, 100, 3);
}

Transition MakeTransition(int action) {
  Transition t;
  t.state = {0};
  t.action = action;
  t.next_state = {0};
  t.next_mask = {1};
  t.done = true;
  return t;
}

TEST(PrioritizedReplayTest, NewTransitionsGetMaxPriority) {
  PrioritizedReplay replay(8);
  for (int i = 0; i < 4; ++i) replay.Add(MakeTransition(i));
  Rng rng(3);
  auto sample = replay.Sample(200, &rng);
  // All four should appear: equal (max) priorities.
  std::vector<bool> seen(4, false);
  for (const Transition* t : sample.transitions) {
    seen[static_cast<size_t>(t->action)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  // IS weights are all 1 when priorities are uniform.
  for (float w : sample.weights) EXPECT_NEAR(w, 1.0f, 1e-5f);
}

TEST(PrioritizedReplayTest, HighTdErrorSampledMore) {
  PrioritizedReplay replay(4, /*alpha=*/1.0);
  for (int i = 0; i < 4; ++i) replay.Add(MakeTransition(i));
  // Make transition 2's priority dominate.
  replay.UpdatePriorities({0, 1, 2, 3}, {0.01f, 0.01f, 5.0f, 0.01f});
  Rng rng(5);
  auto sample = replay.Sample(2000, &rng);
  size_t hits2 = 0;
  for (const Transition* t : sample.transitions) hits2 += (t->action == 2);
  EXPECT_GT(hits2, 1500u);
  // And its IS weight is the smallest (it is over-sampled).
  float w2 = 1.0f, w_other = 0.0f;
  for (size_t i = 0; i < sample.transitions.size(); ++i) {
    if (sample.transitions[i]->action == 2) {
      w2 = sample.weights[i];
    } else {
      w_other = std::max(w_other, sample.weights[i]);
    }
  }
  EXPECT_LT(w2, w_other);
}

TEST(PrioritizedReplayTest, RingOverwriteResetsPriority) {
  PrioritizedReplay replay(2, 1.0);
  replay.Add(MakeTransition(0));
  replay.Add(MakeTransition(1));
  replay.UpdatePriorities({0}, {100.0f});
  replay.Add(MakeTransition(2));  // overwrites slot 0
  Rng rng(7);
  auto sample = replay.Sample(300, &rng);
  for (const Transition* t : sample.transitions) {
    EXPECT_NE(t->action, 0);  // old transition is gone
  }
}

TEST(PrioritizedReplayTest, SizeTracksRing) {
  PrioritizedReplay replay(3);
  EXPECT_EQ(replay.size(), 0u);
  for (int i = 0; i < 10; ++i) replay.Add(MakeTransition(i));
  EXPECT_EQ(replay.size(), 3u);
}

}  // namespace
}  // namespace erminer
