// Config parser and end-to-end pipeline tests.

#include "eval/pipeline.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "util/config.h"

namespace erminer {
namespace {

TEST(ConfigTest, ParsesSectionsAndTypes) {
  Config c = Config::Parse("# comment\n"
                           "plain = 1\n"
                           "[miner]\n"
                           "method = rl\n"
                           "k = 25\n"
                           "support = 12.5\n"
                           "negations = true\n")
                 .ValueOrDie();
  EXPECT_EQ(c.Get("plain"), "1");
  EXPECT_EQ(c.Get("miner.method"), "rl");
  EXPECT_EQ(c.GetInt("miner.k", 0), 25);
  EXPECT_DOUBLE_EQ(c.GetDouble("miner.support", 0), 12.5);
  EXPECT_TRUE(c.GetBool("miner.negations", false));
  EXPECT_FALSE(c.Has("missing"));
  EXPECT_EQ(c.Get("missing", "dflt"), "dflt");
}

TEST(ConfigTest, TrimsWhitespaceAndIgnoresBlankLines) {
  Config c = Config::Parse("  key  =  spaced value  \n\n\n").ValueOrDie();
  EXPECT_EQ(c.Get("key"), "spaced value");
}

TEST(ConfigTest, BoolSpellings) {
  Config c = Config::Parse("a=YES\nb=on\nc=0\nd=nope\n").ValueOrDie();
  EXPECT_TRUE(c.GetBool("a", false));
  EXPECT_TRUE(c.GetBool("b", false));
  EXPECT_FALSE(c.GetBool("c", true));
  EXPECT_FALSE(c.GetBool("d", true));
}

TEST(ConfigTest, MalformedInputsFail) {
  EXPECT_FALSE(Config::Parse("no equals sign\n").ok());
  EXPECT_FALSE(Config::Parse("[unterminated\n").ok());
  EXPECT_FALSE(Config::Parse("= value without key\n").ok());
}

TEST(ConfigTest, MissingFileFails) {
  EXPECT_FALSE(Config::FromFile("/no/such/config.ini").ok());
}

TEST(PipelineTest, GeneratedDatasetEndToEnd) {
  Config config = Config::Parse("[data]\n"
                                "dataset = covid\n"
                                "input_size = 500\n"
                                "master_size = 400\n"
                                "seed = 5\n"
                                "[miner]\n"
                                "method = enu\n"
                                "k = 10\n"
                                "support = 20\n")
                      .ValueOrDie();
  PipelineReport report = RunPipeline(config).ValueOrDie();
  EXPECT_EQ(report.input_rows, 500u);
  EXPECT_EQ(report.master_rows, 400u);
  EXPECT_GT(report.matched_pairs, 0u);
  EXPECT_EQ(report.y_name, "infection_case");
  EXPECT_FALSE(report.mine.rules.empty());
  ASSERT_TRUE(report.accuracy.has_value());
  EXPECT_GT(report.accuracy->f1, 0.2);
  EXPECT_GT(report.filled_missing, 0u);
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("pipeline: 500 input rows"), std::string::npos);
  EXPECT_NE(summary.find("accuracy vs truth"), std::string::npos);
}

TEST(PipelineTest, CsvInputsWithValueMatching) {
  // Write CSVs with differently-named columns; instance matching links.
  StringTable input;
  input.schema = Schema::FromNames({"Code", "Town", "Y"});
  StringTable master;
  master.schema = Schema::FromNames({"PostalCode", "City", "Y"});
  auto y_of = [](int code) { return "y" + std::to_string(code % 3); };
  for (int i = 0; i < 120; ++i) {
    int code = i % 12;
    input.rows.push_back({"c" + std::to_string(code),
                          "t" + std::to_string(code / 2), y_of(code)});
    master.rows.push_back({"c" + std::to_string(code),
                           "t" + std::to_string(code / 2), y_of(code)});
  }
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteCsvFile(input, dir + "/pl_input.csv").ok());
  ASSERT_TRUE(WriteCsvFile(master, dir + "/pl_master.csv").ok());

  Config config = Config::Parse("[data]\ninput = " + dir +
                                "/pl_input.csv\nmaster = " + dir +
                                "/pl_master.csv\ny = Y\n"
                                "[match]\nmode = values\n"
                                "[miner]\nmethod = enu\nsupport = 10\n"
                                "[output]\nrepaired = " +
                                dir + "/pl_repaired.csv\nrules = " + dir +
                                "/pl_rules.txt\n")
                      .ValueOrDie();
  PipelineReport report = RunPipeline(config).ValueOrDie();
  EXPECT_GE(report.matched_pairs, 2u);
  EXPECT_FALSE(report.mine.rules.empty());
  EXPECT_FALSE(report.accuracy.has_value());  // no truth configured
  // Outputs landed on disk.
  EXPECT_TRUE(ReadCsvFile(dir + "/pl_repaired.csv").ok());
  std::remove((dir + "/pl_input.csv").c_str());
  std::remove((dir + "/pl_master.csv").c_str());
  std::remove((dir + "/pl_repaired.csv").c_str());
  std::remove((dir + "/pl_rules.txt").c_str());
}

TEST(PipelineTest, BadConfigsFailCleanly) {
  EXPECT_FALSE(RunPipeline(Config::Parse("x = 1\n").ValueOrDie()).ok());
  EXPECT_FALSE(
      RunPipeline(
          Config::Parse("[data]\ndataset = nope\n").ValueOrDie())
          .ok());
  Config bad_method = Config::Parse("[data]\ndataset = covid\n"
                                    "input_size = 200\nmaster_size = 150\n"
                                    "[miner]\nmethod = wat\n")
                          .ValueOrDie();
  EXPECT_FALSE(RunPipeline(bad_method).ok());
}

}  // namespace
}  // namespace erminer
